//! Shared, hot-swappable predictor handles — the concurrency primitive under
//! the serving engine (`wmp_serve`).
//!
//! The paper's §I deployment story is a *resident* predictor: the model
//! answers memory questions for every arriving workload while a background
//! process periodically retrains it. That demands two properties the plain
//! [`WorkloadPredictor`] trait object does not give:
//!
//! 1. **Shared reads** — N request threads predict through one trained model
//!    concurrently (the trait is `Send + Sync`, so `&self` prediction is
//!    safe from any thread).
//! 2. **Atomic snapshot swap** — a writer installs a retrained or freshly
//!    loaded replacement without blocking readers mid-prediction, and
//!    without any reader ever observing a half-updated model.
//!
//! [`PredictorHandle`] provides both: it is a cheaply-clonable `Arc`-based
//! handle whose [`PredictorHandle::snapshot`] hands out an owned
//! [`ModelSnapshot`] (an `Arc` to the *current* model plus its version).
//! Readers predict through the snapshot entirely outside any lock, so an
//! in-flight prediction always completes against the exact model it started
//! with — swaps only affect which model the *next* snapshot sees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use wmp_mlkit::MlResult;
use wmp_obs::Level;
use wmp_workloads::QueryRecord;

use crate::predictor::WorkloadPredictor;
use crate::workload::Workload;

/// An owned, coherent view of the model a [`PredictorHandle`] held at
/// snapshot time. Predictions through a snapshot never block and never
/// observe a concurrent swap: the underlying model stays alive (and
/// unchanged) for as long as any snapshot references it.
#[derive(Clone)]
pub struct ModelSnapshot {
    model: Arc<dyn WorkloadPredictor>,
    version: u64,
    installed_at: Instant,
}

impl ModelSnapshot {
    /// Monotonic version of the model this snapshot pinned: `0` for the
    /// handle's initial model, incremented by every swap.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The pinned model.
    pub fn model(&self) -> &dyn WorkloadPredictor {
        self.model.as_ref()
    }

    /// Time since this model version was installed into its handle — the
    /// "model age" signal an operator watches to confirm retraining is
    /// actually publishing (a forever-growing age means the background
    /// loop died or stopped triggering).
    pub fn age(&self) -> Duration {
        self.installed_at.elapsed()
    }
}

impl std::ops::Deref for ModelSnapshot {
    type Target = dyn WorkloadPredictor;

    fn deref(&self) -> &Self::Target {
        self.model.as_ref()
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("model", &self.model.name())
            .field("version", &self.version)
            .finish()
    }
}

/// What one [`PredictorHandle::swap`] did: the snapshot it displaced and the
/// version it installed. Reading the version from the outcome (rather than
/// from [`PredictorHandle::version`] afterwards) is race-free when several
/// writers swap concurrently.
#[derive(Debug)]
pub struct SwapOutcome {
    /// The snapshot that was serving before this swap (still usable; it
    /// keeps its model alive).
    pub previous: ModelSnapshot,
    /// The version this swap installed.
    pub version: u64,
}

struct HandleState {
    current: RwLock<ModelSnapshot>,
    /// Version the *next* swap will publish (reads of the current version go
    /// through the snapshot so version and model can never tear).
    next_version: AtomicU64,
    swaps: AtomicU64,
}

/// A cheaply-clonable, thread-safe handle to the "current" model.
///
/// Clones share state: a swap through any clone is immediately visible to
/// snapshots taken through every other clone. The lock is held only for the
/// duration of an `Arc` clone (readers) or an `Arc` pointer swap (writers) —
/// never across a prediction — so readers are effectively wait-free with
/// respect to model installation.
#[derive(Clone)]
pub struct PredictorHandle {
    state: Arc<HandleState>,
}

impl PredictorHandle {
    /// Wraps a predictor in a shareable handle (version 0).
    pub fn new(model: impl WorkloadPredictor + 'static) -> Self {
        Self::from_shared(Arc::new(model))
    }

    /// Wraps an already-shared predictor (version 0).
    pub fn from_shared(model: Arc<dyn WorkloadPredictor>) -> Self {
        PredictorHandle {
            state: Arc::new(HandleState {
                current: RwLock::new(ModelSnapshot {
                    model,
                    version: 0,
                    installed_at: Instant::now(),
                }),
                next_version: AtomicU64::new(1),
                swaps: AtomicU64::new(0),
            }),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, ModelSnapshot> {
        // A panic while the lock is held can only happen inside `Arc` clone
        // or pointer assignment, which do not unwind; recover from poisoning
        // rather than propagating a crash into every serving thread.
        self.state.current.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, ModelSnapshot> {
        self.state.current.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pins the current model into an owned [`ModelSnapshot`]. The returned
    /// snapshot stays coherent regardless of concurrent swaps; take a fresh
    /// snapshot per request (it costs one `Arc` clone) to follow swaps.
    pub fn snapshot(&self) -> ModelSnapshot {
        self.read().clone()
    }

    /// Atomically installs `model` as the new current model. In-flight
    /// predictions keep using the model they snapshotted; only future
    /// snapshots see the replacement.
    pub fn swap(&self, model: impl WorkloadPredictor + 'static) -> SwapOutcome {
        self.swap_shared(Arc::new(model))
    }

    /// [`PredictorHandle::swap`] for an already-shared predictor.
    pub fn swap_shared(&self, model: Arc<dyn WorkloadPredictor>) -> SwapOutcome {
        let mut slot = self.write();
        // Allocate the version while holding the write lock so published
        // versions are monotonic in installation order even under
        // concurrent writers.
        // ordering: Relaxed — the write lock already serializes allocators;
        // the counter only needs atomicity, not publication.
        let version = self.state.next_version.fetch_add(1, Ordering::Relaxed);
        let previous = std::mem::replace(
            &mut *slot,
            ModelSnapshot { model, version, installed_at: Instant::now() },
        );
        drop(slot);
        // ordering: Relaxed — monotonic statistic; readers tolerate a
        // momentarily stale count and never derive invariants from it.
        self.state.swaps.fetch_add(1, Ordering::Relaxed);
        wmp_obs::event!(
            Level::Info,
            target: "wmp_core::handle",
            "model_swap",
            version = version,
            previous_version = previous.version,
            previous_age_us = previous.installed_at.elapsed().as_micros() as u64,
        );
        SwapOutcome { previous, version }
    }

    /// Version of the model a snapshot taken *now* would pin (0 until the
    /// first swap).
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Number of swaps installed through this handle (all clones included).
    pub fn swap_count(&self) -> u64 {
        // ordering: Relaxed — advisory statistic, no synchronization implied.
        self.state.swaps.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for PredictorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("PredictorHandle")
            .field("model", &snap.model.name())
            .field("version", &snap.version)
            .field("swaps", &self.swap_count())
            .finish()
    }
}

/// A handle serves anywhere a predictor is expected: each call pins the
/// current model for exactly one prediction, so a `&PredictorHandle` (or a
/// clone) can be dropped into any existing `WorkloadPredictor` call site and
/// silently gain hot-swap.
impl WorkloadPredictor for PredictorHandle {
    fn name(&self) -> String {
        self.snapshot().name()
    }

    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        self.snapshot().predict_workload(queries)
    }

    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<wmp_plan::ResourceVector> {
        self.snapshot().predict_resources(queries)
    }

    fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        // One snapshot for the whole batch: every workload of the batch is
        // scored by the same model even if a swap lands mid-batch.
        self.snapshot().predict_workloads(records, workloads)
    }

    fn predict_resources_many(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<wmp_plan::ResourceVector>> {
        self.snapshot().predict_resources_many(records, workloads)
    }

    fn footprint_bytes(&self) -> usize {
        self.snapshot().footprint_bytes()
    }

    fn assign_template(&self, query: &QueryRecord) -> MlResult<Option<usize>> {
        self.snapshot().assign_template(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemplateSpec;
    use crate::model::ModelKind;
    use crate::single::SingleWmpDbms;

    fn trained(seed: u64) -> crate::learned::LearnedWmp {
        let log = wmp_workloads::tpcc::generate(300, seed).unwrap();
        crate::learned::LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .templates(TemplateSpec::PlanKMeans { k: 6, seed })
            .fit(&log)
            .unwrap()
    }

    #[test]
    fn snapshots_pin_the_model_across_swaps() {
        let log = wmp_workloads::tpcc::generate(300, 1).unwrap();
        let probe: Vec<&wmp_workloads::QueryRecord> = log.records[..10].iter().collect();
        let a = trained(1);
        let expect_a = a.predict_workload(&probe).unwrap();
        let handle = PredictorHandle::new(a);
        let pinned = handle.snapshot();
        assert_eq!(pinned.version(), 0);

        let outcome = handle.swap(trained(2));
        assert_eq!(outcome.previous.version(), 0);
        assert_eq!(outcome.version, 1);
        assert_eq!(handle.version(), 1);
        assert_eq!(handle.swap_count(), 1);
        // The old snapshot still answers from the old model, bit-exactly.
        assert_eq!(pinned.predict_workload(&probe).unwrap().to_bits(), expect_a.to_bits());
        // A fresh snapshot sees the replacement.
        assert_eq!(handle.snapshot().version(), 1);
    }

    #[test]
    fn clones_share_swaps() {
        let handle = PredictorHandle::new(SingleWmpDbms);
        let clone = handle.clone();
        handle.swap(SingleWmpDbms);
        assert_eq!(clone.version(), 1);
        assert_eq!(clone.swap_count(), 1);
        assert_eq!(clone.name(), "SingleWMP-DBMS");
    }

    #[test]
    fn handle_serves_as_a_workload_predictor() {
        let log = wmp_workloads::tpcc::generate(200, 3).unwrap();
        let probe: Vec<&wmp_workloads::QueryRecord> = log.records[..10].iter().collect();
        let handle = PredictorHandle::new(SingleWmpDbms);
        let p: &dyn WorkloadPredictor = &handle;
        let expected: f64 = probe.iter().map(|q| q.dbms_estimate_mb()).sum();
        assert!((p.predict_workload(&probe).unwrap() - expected).abs() < 1e-9);
        assert_eq!(p.footprint_bytes(), 0);
    }
}
