//! Online deployment loop — the paper's §I "DBMS Integration" story: ship a
//! pre-trained model, keep collecting executed queries from the operational
//! environment, and periodically retrain so accuracy improves (and tracks
//! workload drift) over time.

use wmp_mlkit::{MlError, MlResult};
use wmp_obs::Level;
use wmp_plan::Catalog;
use wmp_workloads::QueryRecord;

use crate::learned::{LearnedWmp, LearnedWmpConfig};
use crate::template::{PlanKMeansTemplates, TemplateLearner};

/// What one [`OnlineWmp::observe`] call did with the observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "signals whether a retrain happened — callers must at least check for Retrained"]
pub enum RetrainOutcome {
    /// The query was buffered; `seen` observations have accumulated since
    /// the last (re)training.
    Buffered {
        /// Observations since the last (re)training.
        seen: usize,
    },
    /// The observation triggered retraining pass number `pass` over a
    /// window of `window_len` queries.
    Retrained {
        /// 1-based retraining pass count.
        pass: usize,
        /// Queries in the window the model was retrained on.
        window_len: usize,
    },
}

impl RetrainOutcome {
    /// True when the observation triggered a retraining pass.
    pub fn retrained(&self) -> bool {
        matches!(self, RetrainOutcome::Retrained { .. })
    }
}

/// Retraining policy for [`OnlineWmp`].
#[derive(Debug, Clone)]
pub struct OnlinePolicy {
    /// Retrain once this many new queries have been observed since the last
    /// (re)training.
    pub retrain_every: usize,
    /// Keep at most this many recent queries (sliding window; older history
    /// ages out so the model tracks drift).
    pub window: usize,
    /// Number of templates for each retraining.
    pub k_templates: usize,
}

impl Default for OnlinePolicy {
    fn default() -> Self {
        OnlinePolicy { retrain_every: 1_000, window: 20_000, k_templates: 30 }
    }
}

/// A LearnedWMP model that retrains itself from an operational query log.
pub struct OnlineWmp {
    config: LearnedWmpConfig,
    policy: OnlinePolicy,
    buffer: Vec<QueryRecord>,
    since_train: usize,
    model: Option<LearnedWmp>,
    retrain_count: usize,
}

impl OnlineWmp {
    /// Creates an untrained online model; it starts predicting after the
    /// first `retrain_every` observations (or an explicit [`OnlineWmp::retrain`]).
    pub fn new(config: LearnedWmpConfig, policy: OnlinePolicy) -> Self {
        OnlineWmp {
            config,
            policy,
            buffer: Vec::new(),
            since_train: 0,
            model: None,
            retrain_count: 0,
        }
    }

    /// Seeds the loop with an already-trained model — typically one
    /// reloaded from a shipped artifact via [`LearnedWmp::load_from`] — so
    /// predictions are available immediately instead of only after the
    /// first `retrain_every` observations. The model's own training
    /// configuration is adopted so subsequent retrains stay consistent with
    /// the artifact.
    pub fn warm_start(&mut self, model: LearnedWmp) {
        self.config = model.config().clone();
        self.model = Some(model);
        self.since_train = 0;
    }

    /// Ingests one executed query (the DBMS query-log hook) and reports
    /// whether it triggered a retraining pass.
    ///
    /// # Errors
    /// Propagates retraining errors.
    pub fn observe(&mut self, record: QueryRecord, catalog: &Catalog) -> MlResult<RetrainOutcome> {
        self.buffer.push(record);
        if self.buffer.len() > self.policy.window {
            let drop = self.buffer.len() - self.policy.window;
            self.buffer.drain(..drop);
        }
        self.since_train += 1;
        if self.since_train >= self.policy.retrain_every
            && self.buffer.len() >= self.config.batch_size
        {
            self.retrain(catalog)?;
            return Ok(RetrainOutcome::Retrained {
                pass: self.retrain_count,
                window_len: self.buffer.len(),
            });
        }
        Ok(RetrainOutcome::Buffered { seen: self.since_train })
    }

    /// Forces a retraining pass over the current window.
    ///
    /// # Errors
    /// Propagates training errors (e.g. not enough history for one batch).
    pub fn retrain(&mut self, catalog: &Catalog) -> MlResult<()> {
        let span = wmp_obs::span!(
            Level::Info,
            target: "wmp_core::online",
            "retrain",
            window_len = self.buffer.len(),
            pass = self.retrain_count + 1,
        );
        let refs: Vec<&QueryRecord> = self.buffer.iter().collect();
        let templates: Box<dyn TemplateLearner> = Box::new(PlanKMeansTemplates::new(
            self.policy.k_templates,
            self.config.seed ^ self.retrain_count as u64,
        ));
        let fitted = LearnedWmp::fit_impl(self.config.clone(), templates, &refs, catalog, None);
        match fitted {
            Ok(model) => {
                self.model = Some(model);
                self.since_train = 0;
                self.retrain_count += 1;
                drop(span);
                Ok(())
            }
            Err(err) => {
                wmp_obs::event!(
                    Level::Warn,
                    target: "wmp_core::online",
                    "retrain_failed",
                    window_len = self.buffer.len(),
                    error = err.to_string(),
                );
                Err(err)
            }
        }
    }

    /// Predicts an unseen workload's memory demand (MB).
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before the first (re)training.
    pub fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        self.model
            .as_ref()
            .ok_or(MlError::NotFitted("OnlineWmp (no retraining has happened yet)"))?
            .predict_workload(queries)
    }

    /// Predicts an unseen workload's full resource demand (memory MB /
    /// CPU ms / IO pages).
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before the first (re)training.
    pub fn predict_resources(
        &self,
        queries: &[&QueryRecord],
    ) -> MlResult<wmp_plan::ResourceVector> {
        self.model
            .as_ref()
            .ok_or(MlError::NotFitted("OnlineWmp (no retraining has happened yet)"))?
            .predict_resources(queries)
    }

    /// Number of retraining passes so far.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Queries currently in the sliding window.
    pub fn window_len(&self) -> usize {
        self.buffer.len()
    }

    /// The current underlying model, if trained.
    pub fn model(&self) -> Option<&LearnedWmp> {
        self.model.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use wmp_mlkit::metrics::mape;

    fn policy(retrain_every: usize, window: usize) -> OnlinePolicy {
        OnlinePolicy { retrain_every, window, k_templates: 10 }
    }

    fn config() -> LearnedWmpConfig {
        LearnedWmpConfig { model: ModelKind::Xgb, ..Default::default() }
    }

    #[test]
    fn predicts_only_after_first_retrain() {
        let log = wmp_workloads::tpcc::generate(300, 1).unwrap();
        let mut online = OnlineWmp::new(config(), policy(100, 1000));
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        assert!(matches!(online.predict_workload(&probe), Err(MlError::NotFitted(_))));
        let mut retrains = 0;
        for r in &log.records {
            if online.observe(r.clone(), &log.catalog).unwrap().retrained() {
                retrains += 1;
            }
        }
        assert_eq!(retrains, 3, "300 observations at retrain_every=100");
        assert_eq!(online.retrain_count(), 3);
        assert!(online.predict_workload(&probe).unwrap() > 0.0);
    }

    #[test]
    fn sliding_window_caps_history() {
        let log = wmp_workloads::tpcc::generate(500, 2).unwrap();
        let mut online = OnlineWmp::new(config(), policy(200, 150));
        for r in &log.records {
            let _ = online.observe(r.clone(), &log.catalog).unwrap();
        }
        assert_eq!(online.window_len(), 150);
    }

    #[test]
    fn retraining_tracks_workload_drift() {
        // Phase 1: the model trains on OLTP-style statements only (templates
        // 0..6). Phase 2: the mix shifts to the heavier statements (6..12);
        // after enough observations the retrained model must beat the stale
        // phase-1 model on the new regime.
        let cat = wmp_workloads::tpcc::catalog();
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let make = |templates: std::ops::Range<usize>, base: u64, n: usize| {
            let mut specs = Vec::new();
            for i in 0..n {
                let mut rng = StdRng::seed_from_u64(base ^ i as u64);
                let t = templates.start + i % (templates.end - templates.start);
                specs.push((
                    wmp_workloads::tpcc::instantiate(&cat, t, base + i as u64, &mut rng),
                    t,
                ));
            }
            wmp_workloads::build_log("tpcc-drift", cat.clone(), specs).unwrap()
        };
        let phase1 = make(0..6, 1000, 400);
        let phase2 = make(6..12, 9000, 400);

        let mut online = OnlineWmp::new(config(), policy(400, 600));
        for r in &phase1.records {
            let _ = online.observe(r.clone(), &phase1.catalog).unwrap();
        }
        assert_eq!(online.retrain_count(), 1);
        // Evaluate the stale model on phase-2 workloads.
        let eval = |m: &OnlineWmp, log: &wmp_workloads::QueryLog| {
            let refs: Vec<&QueryRecord> = log.records.iter().collect();
            let ws =
                crate::workload::batch_workloads(&refs, 10, 7, crate::workload::LabelMode::Sum);
            let y: Vec<f64> = ws.iter().map(crate::workload::Workload::y_mb).collect();
            let preds: Vec<f64> = ws
                .iter()
                .map(|w| {
                    let qs: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| refs[i]).collect();
                    m.predict_workload(&qs).unwrap()
                })
                .collect();
            mape(&y, &preds).unwrap()
        };
        let stale = eval(&online, &phase2);
        for r in &phase2.records {
            let _ = online.observe(r.clone(), &phase2.catalog).unwrap();
        }
        assert!(online.retrain_count() >= 2);
        let fresh = eval(&online, &phase2);
        assert!(
            fresh < stale,
            "retrained MAPE ({fresh:.1}%) must beat the stale model ({stale:.1}%)"
        );
    }

    #[test]
    fn observe_reports_typed_outcomes() {
        let log = wmp_workloads::tpcc::generate(120, 4).unwrap();
        let mut online = OnlineWmp::new(config(), policy(100, 1000));
        for (i, r) in log.records.iter().enumerate() {
            let outcome = online.observe(r.clone(), &log.catalog).unwrap();
            match outcome {
                RetrainOutcome::Buffered { seen } => {
                    assert_eq!(seen, (i % 100) + 1);
                    assert!(!outcome.retrained());
                }
                RetrainOutcome::Retrained { pass, window_len } => {
                    assert_eq!(i, 99, "retrain fires exactly at retrain_every");
                    assert_eq!(pass, 1);
                    assert_eq!(window_len, 100);
                }
            }
        }
    }

    #[test]
    fn warm_start_predicts_immediately_and_adopts_the_model_config() {
        let log = wmp_workloads::tpcc::generate(300, 8).unwrap();
        let pre_trained = LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .templates(crate::builder::TemplateSpec::PlanKMeans { k: 8, seed: 3 })
            .fit(&log)
            .unwrap();
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        let expected = pre_trained.predict_workload(&probe).unwrap();

        let mut online = OnlineWmp::new(config(), policy(1_000, 2_000));
        assert!(online.predict_workload(&probe).is_err(), "cold model cannot predict");
        online.warm_start(pre_trained);
        assert_eq!(
            online.predict_workload(&probe).unwrap().to_bits(),
            expected.to_bits(),
            "warm-started predictions come from the seeded model"
        );
        // The seeded model's config takes over for future retrains.
        assert_eq!(online.retrain_count(), 0);
    }

    #[test]
    fn warm_start_from_a_persisted_artifact() {
        let log = wmp_workloads::tpcc::generate(300, 12).unwrap();
        let trained = LearnedWmp::builder()
            .model(ModelKind::Xgb)
            .templates(crate::builder::TemplateSpec::PlanKMeans { k: 8, seed: 5 })
            .fit(&log)
            .unwrap();
        let mut artifact = Vec::new();
        trained.save_to_writer(&mut artifact).unwrap();

        let mut online = OnlineWmp::new(config(), policy(10_000, 20_000));
        online.warm_start(LearnedWmp::load_from_reader(&mut artifact.as_slice()).unwrap());
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        assert_eq!(
            online.predict_workload(&probe).unwrap().to_bits(),
            trained.predict_workload(&probe).unwrap().to_bits()
        );
    }

    #[test]
    fn forced_retrain_requires_enough_history() {
        let log = wmp_workloads::tpcc::generate(5, 3).unwrap();
        let mut online = OnlineWmp::new(config(), policy(1000, 1000));
        for r in &log.records {
            let _ = online.observe(r.clone(), &log.catalog).unwrap();
        }
        // 5 records < batch_size 10: retraining cannot form a workload.
        assert!(online.retrain(&log.catalog).is_err());
    }
}
