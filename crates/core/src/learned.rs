//! The LearnedWMP model (paper §III): training pipeline TR3–TR6 and the
//! inference pipeline IN1–IN5.

use std::time::Instant;

use wmp_mlkit::{Matrix, MlError, MlResult, Regressor};
use wmp_plan::Catalog;
use wmp_workloads::QueryRecord;

use crate::histogram::{build_histogram, HistogramMode};
use crate::model::{Approach, ModelKind};
use crate::template::TemplateLearner;
use crate::workload::{batch_workloads, LabelMode, Workload};

/// LearnedWMP hyper-parameters.
#[derive(Debug, Clone)]
pub struct LearnedWmpConfig {
    /// Learner family for the distribution regressor (TR6).
    pub model: ModelKind,
    /// Workload batch size `s` (TR4; the paper settles on 10).
    pub batch_size: usize,
    /// Label aggregation (sum per the paper's prose; max as ablation).
    pub label_mode: LabelMode,
    /// Histogram normalization (counts per the paper; frequencies ablation).
    pub histogram_mode: HistogramMode,
    /// Seed for workload batching.
    pub seed: u64,
}

impl Default for LearnedWmpConfig {
    fn default() -> Self {
        LearnedWmpConfig {
            model: ModelKind::Xgb,
            batch_size: 10,
            label_mode: LabelMode::Sum,
            histogram_mode: HistogramMode::Counts,
            seed: 42,
        }
    }
}

/// Wall-clock breakdown of a training run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainTimings {
    /// TR3: template learning (k-means over plan features).
    pub template_ms: f64,
    /// TR4–TR5: batching + histogram construction.
    pub histogram_ms: f64,
    /// TR6: regressor fitting — the number comparable to the paper's Fig. 6.
    pub fit_ms: f64,
}

impl TrainTimings {
    /// End-to-end training time.
    pub fn total_ms(&self) -> f64 {
        self.template_ms + self.histogram_ms + self.fit_ms
    }
}

/// A trained LearnedWMP model: templates + distribution regressor.
pub struct LearnedWmp {
    config: LearnedWmpConfig,
    templates: Box<dyn TemplateLearner>,
    regressor: Box<dyn Regressor>,
    /// Training wall-clock breakdown.
    pub timings: TrainTimings,
    /// Number of training workloads the regressor saw.
    pub n_train_workloads: usize,
}

impl LearnedWmp {
    /// Trains the full pipeline (TR3–TR6) on a training log.
    ///
    /// # Errors
    /// Propagates template-learning and regression errors; fails on an empty
    /// training set or when fewer than one full workload can be formed.
    pub fn train(
        config: LearnedWmpConfig,
        templates: Box<dyn TemplateLearner>,
        records: &[&QueryRecord],
        catalog: &Catalog,
    ) -> MlResult<Self> {
        let workloads = if records.is_empty() {
            Vec::new()
        } else {
            batch_workloads(records, config.batch_size, config.seed, config.label_mode)
        };
        Self::train_with_workloads(config, templates, records, catalog, workloads)
    }

    /// Trains on pre-built workloads — supports the variable-length-workload
    /// extension (§I: "the design can easily be extended to work with
    /// variable-length workloads"): pass batches from
    /// [`crate::workload::batch_workloads_variable`].
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmp::train`].
    pub fn train_with_workloads(
        config: LearnedWmpConfig,
        mut templates: Box<dyn TemplateLearner>,
        records: &[&QueryRecord],
        catalog: &Catalog,
        workloads: Vec<crate::workload::Workload>,
    ) -> MlResult<Self> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("LearnedWmp::train"));
        }
        // TR3: learn templates.
        let t0 = Instant::now();
        templates.fit(records, catalog)?;
        let template_ms = t0.elapsed().as_secs_f64() * 1e3;

        // TR4–TR5: histograms over the provided workloads.
        let t1 = Instant::now();
        if workloads.is_empty() {
            return Err(MlError::InvalidHyperparameter(format!(
                "batch_size {} exceeds training-set size {}",
                config.batch_size,
                records.len()
            )));
        }
        let assignments: Vec<usize> =
            records.iter().map(|r| templates.assign(r)).collect::<MlResult<_>>()?;
        let k = templates.n_templates();
        let rows: Vec<Vec<f64>> = workloads
            .iter()
            .map(|w| {
                let member: Vec<usize> = w.query_indices.iter().map(|&i| assignments[i]).collect();
                build_histogram(&member, k, config.histogram_mode)
            })
            .collect();
        let x = Matrix::from_rows(&rows)?;
        let y: Vec<f64> = workloads.iter().map(|w| w.y).collect();
        let histogram_ms = t1.elapsed().as_secs_f64() * 1e3;

        // TR6: train the distribution regressor.
        let mut regressor = config.model.build(Approach::Learned, workloads.len());
        let t2 = Instant::now();
        regressor.fit(&x, &y)?;
        let fit_ms = t2.elapsed().as_secs_f64() * 1e3;

        Ok(LearnedWmp {
            config,
            templates,
            regressor,
            timings: TrainTimings { template_ms, histogram_ms, fit_ms },
            n_train_workloads: workloads.len(),
        })
    }

    /// Inference (IN1–IN5): predicts the memory demand of one workload.
    ///
    /// # Errors
    /// Propagates assignment/prediction errors.
    pub fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        let assignments: Vec<usize> =
            queries.iter().map(|r| self.templates.assign(r)).collect::<MlResult<_>>()?;
        let h =
            build_histogram(&assignments, self.templates.n_templates(), self.config.histogram_mode);
        self.regressor.predict_row(&h)
    }

    /// Predicts every workload in a batched test set (indices into `records`).
    ///
    /// # Errors
    /// Propagates per-workload errors.
    pub fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        workloads
            .iter()
            .map(|w| {
                let queries: Vec<&QueryRecord> =
                    w.query_indices.iter().map(|&i| records[i]).collect();
                self.predict_workload(&queries)
            })
            .collect()
    }

    /// The trained distribution regressor.
    pub fn regressor(&self) -> &dyn Regressor {
        self.regressor.as_ref()
    }

    /// The fitted template learner.
    pub fn templates(&self) -> &dyn TemplateLearner {
        self.templates.as_ref()
    }

    /// Model size in bytes (the regressor, as in the paper's Fig. 8).
    pub fn footprint_bytes(&self) -> usize {
        self.regressor.footprint_bytes()
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &LearnedWmpConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::PlanKMeansTemplates;

    fn trained(model: ModelKind) -> (wmp_workloads::QueryLog, LearnedWmp) {
        let log = wmp_workloads::tpcc::generate(600, 9).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let wmp = LearnedWmp::train(
            LearnedWmpConfig { model, ..LearnedWmpConfig::default() },
            Box::new(PlanKMeansTemplates::new(10, 1)),
            &refs,
            &log.catalog,
        )
        .unwrap();
        (log, wmp)
    }

    #[test]
    fn trains_and_predicts_positive_memory() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let pred = wmp.predict_workload(&refs[..10]).unwrap();
        assert!(pred.is_finite());
        assert!(pred > 0.0, "memory predictions must be positive, got {pred}");
        assert_eq!(wmp.n_train_workloads, 60);
    }

    #[test]
    fn predictions_track_workload_composition() {
        // A workload of 10 heavy queries must predict more than 10 light ones.
        let (log, wmp) = trained(ModelKind::Xgb);
        let mut sorted: Vec<&QueryRecord> = log.records.iter().collect();
        sorted.sort_by(|a, b| a.true_memory_mb.partial_cmp(&b.true_memory_mb).unwrap());
        let light = &sorted[..10];
        let heavy = &sorted[sorted.len() - 10..];
        let p_light = wmp.predict_workload(light).unwrap();
        let p_heavy = wmp.predict_workload(heavy).unwrap();
        assert!(p_heavy > p_light, "heavy {p_heavy} vs light {p_light}");
    }

    #[test]
    fn reasonable_in_sample_accuracy() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let ws = batch_workloads(&refs, 10, 7, LabelMode::Sum);
        let preds = wmp.predict_workloads(&refs, &ws).unwrap();
        let y: Vec<f64> = ws.iter().map(|w| w.y).collect();
        let mape = wmp_mlkit::metrics::mape(&y, &preds).unwrap();
        assert!(mape < 60.0, "in-sample MAPE = {mape}%");
    }

    #[test]
    fn timings_are_recorded() {
        let (_, wmp) = trained(ModelKind::Ridge);
        assert!(wmp.timings.template_ms > 0.0);
        assert!(wmp.timings.fit_ms > 0.0);
        assert!(wmp.timings.total_ms() >= wmp.timings.fit_ms);
        assert!(wmp.footprint_bytes() > 0);
    }

    #[test]
    fn all_model_kinds_train() {
        for kind in ModelKind::ALL {
            let (_, wmp) = trained(kind);
            assert_eq!(wmp.config().model, kind);
        }
    }

    #[test]
    fn errors_on_empty_or_oversized_batch() {
        let log = wmp_workloads::tpcc::generate(20, 9).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let empty: Vec<&QueryRecord> = Vec::new();
        assert!(LearnedWmp::train(
            LearnedWmpConfig::default(),
            Box::new(PlanKMeansTemplates::new(4, 0)),
            &empty,
            &log.catalog,
        )
        .is_err());
        assert!(LearnedWmp::train(
            LearnedWmpConfig { batch_size: 100, ..LearnedWmpConfig::default() },
            Box::new(PlanKMeansTemplates::new(4, 0)),
            &refs,
            &log.catalog,
        )
        .is_err());
    }
}
