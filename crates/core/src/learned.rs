//! The LearnedWMP model (paper §III): training pipeline TR3–TR6 and the
//! inference pipeline IN1–IN5.

use std::time::Instant;

use wmp_mlkit::{Matrix, MlError, MlResult, Regressor};
use wmp_plan::{Catalog, ResourceVector, N_RESOURCES};
use wmp_workloads::QueryRecord;

use crate::histogram::{build_histogram, HistogramMode};
use crate::model::{Approach, ModelKind};
use crate::template::TemplateLearner;
use crate::workload::{batch_workloads, LabelMode, Workload};

/// LearnedWMP hyper-parameters.
#[derive(Debug, Clone)]
pub struct LearnedWmpConfig {
    /// Learner family for the distribution regressor (TR6).
    pub model: ModelKind,
    /// Workload batch size `s` (TR4; the paper settles on 10).
    pub batch_size: usize,
    /// Label aggregation (sum per the paper's prose; max as ablation).
    pub label_mode: LabelMode,
    /// Histogram normalization (counts per the paper; frequencies ablation).
    pub histogram_mode: HistogramMode,
    /// Seed for workload batching.
    pub seed: u64,
}

impl Default for LearnedWmpConfig {
    fn default() -> Self {
        LearnedWmpConfig {
            model: ModelKind::Xgb,
            batch_size: 10,
            label_mode: LabelMode::Sum,
            histogram_mode: HistogramMode::Counts,
            seed: 42,
        }
    }
}

/// Wall-clock breakdown of a training run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainTimings {
    /// TR3: template learning (k-means over plan features).
    pub template_ms: f64,
    /// TR4–TR5: batching + histogram construction.
    pub histogram_ms: f64,
    /// TR6: regressor fitting — the number comparable to the paper's Fig. 6.
    pub fit_ms: f64,
}

impl TrainTimings {
    /// End-to-end training time.
    pub fn total_ms(&self) -> f64 {
        self.template_ms + self.histogram_ms + self.fit_ms
    }
}

/// A trained LearnedWMP model: templates + distribution regressor.
pub struct LearnedWmp {
    config: LearnedWmpConfig,
    templates: Box<dyn TemplateLearner>,
    regressor: Box<dyn Regressor>,
    /// Training wall-clock breakdown.
    pub timings: TrainTimings,
    /// Number of training workloads the regressor saw.
    pub n_train_workloads: usize,
}

impl std::fmt::Debug for LearnedWmp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnedWmp")
            .field("config", &self.config)
            .field("templates", &self.templates.name())
            .field("regressor", &self.regressor.name())
            .field("n_train_workloads", &self.n_train_workloads)
            .field("timings", &self.timings)
            .finish()
    }
}

impl LearnedWmp {
    /// Starts a validated, fluent construction of a LearnedWMP model — the
    /// recommended way to train:
    ///
    /// ```
    /// use learnedwmp_core::{LearnedWmp, ModelKind, TemplateSpec};
    /// let log = wmp_workloads::tpcc::generate(200, 1).unwrap();
    /// let model = LearnedWmp::builder()
    ///     .model(ModelKind::Ridge)
    ///     .templates(TemplateSpec::PlanKMeans { k: 8, seed: 42 })
    ///     .fit(&log)
    ///     .unwrap();
    /// # let _ = model;
    /// ```
    pub fn builder() -> crate::builder::LearnedWmpBuilder {
        crate::builder::LearnedWmpBuilder::new()
    }

    /// The shared training pipeline behind the builder (TR3–TR6). When
    /// `workloads` is `None`, fixed-size batches are drawn from the config;
    /// `Some` supports the variable-length-workload extension (§I: "the
    /// design can easily be extended to work with variable-length
    /// workloads") via [`crate::workload::batch_workloads_variable`].
    pub(crate) fn fit_impl(
        config: LearnedWmpConfig,
        mut templates: Box<dyn TemplateLearner>,
        records: &[&QueryRecord],
        catalog: &Catalog,
        workloads: Option<Vec<crate::workload::Workload>>,
    ) -> MlResult<Self> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("LearnedWmp::train"));
        }
        // Training features must agree on one width: plan-feature templates
        // learn centroids of that width, and a mixed-width log means the
        // featurizer changed mid-collection — a corrupt training set.
        let width = records[0].features.len();
        if let Some(bad) = records.iter().find(|r| r.features.len() != width) {
            return Err(wmp_mlkit::error::dim_mismatch(
                format!("every record featurized to {width} values (record 0's width)"),
                format!("record id {} has {} values", bad.id, bad.features.len()),
            ));
        }
        let workloads = workloads.unwrap_or_else(|| {
            batch_workloads(records, config.batch_size, config.seed, config.label_mode)
        });
        // TR3: learn templates.
        let t0 = Instant::now();
        templates.fit(records, catalog)?;
        let template_ms = t0.elapsed().as_secs_f64() * 1e3;

        // TR4–TR5: histograms over the provided workloads.
        let t1 = Instant::now();
        if workloads.is_empty() {
            return Err(MlError::InvalidHyperparameter(format!(
                "batch_size {} exceeds training-set size {}",
                config.batch_size,
                records.len()
            )));
        }
        let assignments: Vec<usize> =
            records.iter().map(|r| templates.assign(r)).collect::<MlResult<_>>()?;
        let k = templates.n_templates();
        let rows: Vec<Vec<f64>> = workloads
            .iter()
            .map(|w| {
                let member: Vec<usize> = w
                    .query_indices
                    .iter()
                    .map(|&i| {
                        assignments.get(i).copied().ok_or_else(|| {
                            wmp_mlkit::error::dim_mismatch(
                                format!("query index < {}", records.len()),
                                format!("index {i}"),
                            )
                        })
                    })
                    .collect::<MlResult<_>>()?;
                build_histogram(&member, k, config.histogram_mode)
            })
            .collect::<MlResult<_>>()?;
        let x = Matrix::from_rows(&rows)?;
        // One target column per resource axis, memory first so the scalar
        // prediction path (head 0) remains the paper's memory predictor.
        let targets: Vec<Vec<f64>> = (0..N_RESOURCES)
            .map(|t| workloads.iter().map(|w| w.y.as_array()[t]).collect())
            .collect();
        let histogram_ms = t1.elapsed().as_secs_f64() * 1e3;

        // TR6: train the multi-output distribution regressor.
        let mut regressor =
            config.model.build_multi(Approach::Learned, workloads.len(), N_RESOURCES);
        let t2 = Instant::now();
        regressor.fit_multi(&x, &targets)?;
        let fit_ms = t2.elapsed().as_secs_f64() * 1e3;

        Ok(LearnedWmp {
            config,
            templates,
            regressor,
            timings: TrainTimings { template_ms, histogram_ms, fit_ms },
            n_train_workloads: workloads.len(),
        })
    }

    /// Inference (IN1–IN5): predicts the full resource demand of one
    /// workload — memory (MB), CPU time (ms), and IO (pages).
    ///
    /// Models trained before multi-resource labels predict only the memory
    /// axis; the CPU and IO components come back as zero
    /// ([`ResourceVector::from_partial`]), so v1 artifacts keep serving.
    ///
    /// # Errors
    /// Propagates assignment/prediction errors.
    pub fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        let assignments: Vec<usize> =
            queries.iter().map(|r| self.templates.assign(r)).collect::<MlResult<_>>()?;
        let h = build_histogram(
            &assignments,
            self.templates.n_templates(),
            self.config.histogram_mode,
        )?;
        Ok(ResourceVector::from_partial(&self.regressor.predict_row_multi(&h)?))
    }

    /// Predicts the memory demand (MB) of one workload — the memory
    /// projection of [`LearnedWmp::predict_resources`].
    ///
    /// # Errors
    /// Propagates assignment/prediction errors.
    pub fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        let assignments: Vec<usize> =
            queries.iter().map(|r| self.templates.assign(r)).collect::<MlResult<_>>()?;
        let h = build_histogram(
            &assignments,
            self.templates.n_templates(),
            self.config.histogram_mode,
        )?;
        self.regressor.predict_row(&h)
    }

    /// Predicts every workload in a batched test set (indices into `records`).
    ///
    /// Each distinct record is assigned to its template exactly once
    /// (memoized by index), so overlapping workloads — and the common case
    /// where every record appears in some workload — never re-run IN3 per
    /// membership. This is the batched-inference hot path behind the
    /// [`crate::predictor::WorkloadPredictor`] trait.
    ///
    /// # Errors
    /// Propagates per-workload errors; out-of-range `query_indices` surface
    /// as a typed [`MlError::DimensionMismatch`] instead of a panic.
    pub fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        let hs = self.workload_histograms(records, workloads)?;
        hs.iter().map(|h| self.regressor.predict_row(h)).collect()
    }

    /// Batched full-resource inference: one [`ResourceVector`] per workload,
    /// with the same per-record template-assignment memoization as
    /// [`LearnedWmp::predict_workloads`].
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmp::predict_workloads`].
    pub fn predict_resources_many(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<ResourceVector>> {
        let hs = self.workload_histograms(records, workloads)?;
        hs.iter()
            .map(|h| Ok(ResourceVector::from_partial(&self.regressor.predict_row_multi(h)?)))
            .collect()
    }

    /// IN1–IN4 for a batched test set: builds every workload's template
    /// histogram, assigning each distinct record at most once (memoized by
    /// index) so overlapping workloads never re-run IN3 per membership.
    fn workload_histograms(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<Vec<f64>>> {
        let mut assignments: Vec<Option<usize>> = vec![None; records.len()];
        let k = self.templates.n_templates();
        let mut hs = Vec::with_capacity(workloads.len());
        let mut member = Vec::new();
        for w in workloads {
            member.clear();
            for &i in &w.query_indices {
                let record = *records.get(i).ok_or_else(|| {
                    wmp_mlkit::error::dim_mismatch(
                        format!("query index < {}", records.len()),
                        format!("index {i}"),
                    )
                })?;
                let a = match assignments[i] {
                    Some(a) => a,
                    None => {
                        let a = self.templates.assign(record)?;
                        assignments[i] = Some(a);
                        a
                    }
                };
                member.push(a);
            }
            hs.push(build_histogram(&member, k, self.config.histogram_mode)?);
        }
        Ok(hs)
    }

    /// Assigns one query to its learned template (IN3 for a single record) —
    /// the signal a drift monitor consumes to track the live template
    /// distribution against training.
    ///
    /// # Errors
    /// Propagates template-assignment errors.
    pub fn assign_template(&self, query: &QueryRecord) -> MlResult<usize> {
        self.templates.assign(query)
    }

    /// The normalized template distribution of a record set — each entry is
    /// the fraction of `records` assigned to that template. Computed over
    /// the training log, this is the reference distribution a
    /// `wmp_obs::DriftMonitor` compares live traffic against.
    ///
    /// # Errors
    /// Propagates assignment errors; fails on an empty record set.
    pub fn template_distribution(&self, records: &[&QueryRecord]) -> MlResult<Vec<f64>> {
        if records.is_empty() {
            return Err(wmp_mlkit::error::dim_mismatch("at least one record", "0 records"));
        }
        let mut counts = vec![0.0; self.templates.n_templates()];
        for r in records {
            let a = self.templates.assign(r)?;
            if a < counts.len() {
                counts[a] += 1.0;
            }
        }
        let total = records.len() as f64;
        for c in &mut counts {
            *c /= total;
        }
        Ok(counts)
    }

    /// The trained distribution regressor.
    pub fn regressor(&self) -> &dyn Regressor {
        self.regressor.as_ref()
    }

    /// The fitted template learner.
    pub fn templates(&self) -> &dyn TemplateLearner {
        self.templates.as_ref()
    }

    /// Model size in bytes (the regressor, as in the paper's Fig. 8).
    pub fn footprint_bytes(&self) -> usize {
        self.regressor.footprint_bytes()
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &LearnedWmpConfig {
        &self.config
    }

    /// Reassembles a model from persisted parts (the codec's loader).
    pub(crate) fn from_parts(
        config: LearnedWmpConfig,
        templates: Box<dyn TemplateLearner>,
        regressor: Box<dyn Regressor>,
        timings: TrainTimings,
        n_train_workloads: usize,
    ) -> Self {
        LearnedWmp { config, templates, regressor, timings, n_train_workloads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(model: ModelKind) -> (wmp_workloads::QueryLog, LearnedWmp) {
        let log = wmp_workloads::tpcc::generate(600, 9).unwrap();
        let wmp = LearnedWmp::builder()
            .model(model)
            .templates(crate::builder::TemplateSpec::PlanKMeans { k: 10, seed: 1 })
            .fit(&log)
            .unwrap();
        (log, wmp)
    }

    #[test]
    fn trains_and_predicts_positive_memory() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let pred = wmp.predict_workload(&refs[..10]).unwrap();
        assert!(pred.is_finite());
        assert!(pred > 0.0, "memory predictions must be positive, got {pred}");
        assert_eq!(wmp.n_train_workloads, 60);
    }

    #[test]
    fn predictions_track_workload_composition() {
        // A workload of 10 heavy queries must predict more than 10 light ones.
        let (log, wmp) = trained(ModelKind::Xgb);
        let mut sorted: Vec<&QueryRecord> = log.records.iter().collect();
        sorted.sort_by(|a, b| a.true_memory_mb().partial_cmp(&b.true_memory_mb()).unwrap());
        let light = &sorted[..10];
        let heavy = &sorted[sorted.len() - 10..];
        let p_light = wmp.predict_workload(light).unwrap();
        let p_heavy = wmp.predict_workload(heavy).unwrap();
        assert!(p_heavy > p_light, "heavy {p_heavy} vs light {p_light}");
    }

    #[test]
    fn reasonable_in_sample_accuracy() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let ws = batch_workloads(&refs, 10, 7, LabelMode::Sum);
        let preds = wmp.predict_workloads(&refs, &ws).unwrap();
        let y: Vec<f64> = ws.iter().map(Workload::y_mb).collect();
        let mape = wmp_mlkit::metrics::mape(&y, &preds).unwrap();
        assert!(mape < 60.0, "in-sample MAPE = {mape}%");
    }

    #[test]
    fn predicts_all_three_resources() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let r = wmp.predict_resources(&refs[..10]).unwrap();
        assert!(r.is_finite(), "{r}");
        assert!(r.memory_mb > 0.0 && r.cpu_ms > 0.0 && r.io_pages > 0.0, "{r}");
        // The memory axis is exactly the scalar prediction path (head 0).
        assert_eq!(r.memory_mb.to_bits(), wmp.predict_workload(&refs[..10]).unwrap().to_bits());
        // Batched full-resource inference matches the per-workload path.
        let ws = batch_workloads(&refs, 10, 7, LabelMode::Sum);
        let many = wmp.predict_resources_many(&refs, &ws).unwrap();
        assert_eq!(many.len(), ws.len());
        for (w, vec_pred) in ws.iter().zip(&many) {
            let qs: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| refs[i]).collect();
            assert_eq!(wmp.predict_resources(&qs).unwrap(), *vec_pred);
        }
    }

    #[test]
    fn cpu_and_io_predictions_are_usefully_accurate_in_sample() {
        let (log, wmp) = trained(ModelKind::Xgb);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let ws = batch_workloads(&refs, 10, 7, LabelMode::Sum);
        let preds = wmp.predict_resources_many(&refs, &ws).unwrap();
        // TPC-C per-query CPU is heavily skewed (a few analytic-ish queries
        // dominate), which makes MAPE explode on near-zero-label workloads;
        // r2 is the meaningful "explains the variance" check here.
        for (axis, label) in [(1, "cpu_ms"), (2, "io_pages")] {
            let y: Vec<f64> = ws.iter().map(|w| w.y.as_array()[axis]).collect();
            let p: Vec<f64> = preds.iter().map(|r| r.as_array()[axis]).collect();
            let r2 = wmp_mlkit::metrics::r2(&y, &p).unwrap();
            assert!(r2 > 0.5, "in-sample {label} r2 = {r2}");
        }
    }

    #[test]
    fn mixed_feature_widths_are_rejected_at_train_time() {
        let log = wmp_workloads::tpcc::generate(60, 2).unwrap();
        let mut records = log.records.clone();
        records[7].features.truncate(4);
        let refs: Vec<&QueryRecord> = records.iter().collect();
        let err = LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .templates(crate::builder::TemplateSpec::PlanKMeans { k: 4, seed: 0 })
            .fit_refs(&refs, &log.catalog)
            .unwrap_err();
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn timings_are_recorded() {
        let (_, wmp) = trained(ModelKind::Ridge);
        assert!(wmp.timings.template_ms > 0.0);
        assert!(wmp.timings.fit_ms > 0.0);
        assert!(wmp.timings.total_ms() >= wmp.timings.fit_ms);
        assert!(wmp.footprint_bytes() > 0);
    }

    #[test]
    fn all_model_kinds_train() {
        for kind in ModelKind::ALL {
            let (_, wmp) = trained(kind);
            assert_eq!(wmp.config().model, kind);
        }
    }

    #[test]
    fn errors_on_empty_or_oversized_batch() {
        let log = wmp_workloads::tpcc::generate(20, 9).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let empty: Vec<&QueryRecord> = Vec::new();
        let spec = crate::builder::TemplateSpec::PlanKMeans { k: 4, seed: 0 };
        assert!(LearnedWmp::builder()
            .templates(spec.clone())
            .fit_refs(&empty, &log.catalog)
            .is_err());
        assert!(LearnedWmp::builder()
            .templates(spec)
            .batch_size(100)
            .fit_refs(&refs, &log.catalog)
            .is_err());
    }
}
