//! Workload batching (paper step TR4): partition queries into fixed-size
//! workloads of `s` queries and compute each workload's resource label `y` —
//! a [`ResourceVector`] aggregating memory, CPU time, and IO pages.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wmp_plan::ResourceVector;
use wmp_workloads::QueryRecord;

/// How a workload's label aggregates its queries' per-resource demands.
///
/// The paper's prose and worked example (Fig. 3) *sum* per-query peaks; its
/// eq. (1) typesets a `max`. We implement the prose semantics as the default
/// and keep `Max` as an ablation (`ablation_label_mode`). Aggregation is
/// componentwise: every resource axis (memory / CPU / IO) is summed or
/// maxed independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMode {
    /// `y = Σ mᵢ` per resource — collective demand if the batch runs
    /// concurrently.
    Sum,
    /// `y = max mᵢ` per resource — the single heaviest query on each axis.
    Max,
}

/// A workload: indices into a record slice plus the resource label.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Indices of the member queries (into the record slice used to batch).
    pub query_indices: Vec<usize>,
    /// Aggregated actual resource demand (memory MB / CPU ms / IO pages).
    pub y: ResourceVector,
}

impl Workload {
    /// The memory component of the label — the paper's original scalar `y`.
    pub fn y_mb(&self) -> f64 {
        self.y.memory_mb
    }
}

/// Computes a workload label from member records, componentwise per resource.
pub fn label_of(records: &[&QueryRecord], mode: LabelMode) -> ResourceVector {
    match mode {
        LabelMode::Sum => records.iter().map(|r| r.resources).sum(),
        LabelMode::Max => records
            .iter()
            .map(|r| r.resources)
            .fold(ResourceVector::ZERO, |acc, r| acc.component_max(r)),
    }
}

/// Randomly partitions `records` into workloads of exactly `batch_size`
/// queries (paper TR4: "randomly divides training queries into m training
/// workloads"). A trailing remainder smaller than `batch_size` is dropped so
/// every workload has identical size, as in the paper's fixed-length design.
pub fn batch_workloads(
    records: &[&QueryRecord],
    batch_size: usize,
    seed: u64,
    mode: LabelMode,
) -> Vec<Workload> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.chunks_exact(batch_size)
        .map(|chunk| {
            let members: Vec<&QueryRecord> = chunk.iter().map(|&i| records[i]).collect();
            Workload { query_indices: chunk.to_vec(), y: label_of(&members, mode) }
        })
        .collect()
}

/// Variable-length batching — the extension the paper names in §I ("the
/// design can easily be extended to work with variable-length workloads"):
/// workload sizes are drawn uniformly from `min_size..=max_size`. Histogram
/// *counts* still encode the workload size, so a LearnedWMP model trained on
/// variable batches predicts sum labels across sizes.
pub fn batch_workloads_variable(
    records: &[&QueryRecord],
    min_size: usize,
    max_size: usize,
    seed: u64,
    mode: LabelMode,
) -> Vec<Workload> {
    assert!(min_size > 0, "min_size must be positive");
    assert!(min_size <= max_size, "min_size must not exceed max_size");
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut rng);
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < idx.len() {
        let want = rng.gen_range(min_size..=max_size);
        if idx.len() - pos < want {
            break; // drop the undersized remainder, as in fixed-length mode
        }
        let chunk = &idx[pos..pos + want];
        let members: Vec<&QueryRecord> = chunk.iter().map(|&i| records[i]).collect();
        out.push(Workload { query_indices: chunk.to_vec(), y: label_of(&members, mode) });
        pos += want;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_plan::features::N_PLAN_FEATURES;
    use wmp_plan::query::{QuerySpec, TableRef};

    fn record(id: u64, mem: f64) -> QueryRecord {
        // Each resource axis scales differently so componentwise aggregation
        // bugs (e.g. summing memory into cpu) are caught.
        let resources = ResourceVector::new(mem, mem * 3.0, mem * 10.0);
        QueryRecord {
            id,
            spec: QuerySpec { id, tables: vec![TableRef::plain("t")], ..QuerySpec::default() },
            features: vec![0.0; N_PLAN_FEATURES],
            resources,
            dbms_estimate: resources.scale(1.1),
            template_hint: 0,
        }
    }

    fn records(n: usize) -> Vec<QueryRecord> {
        (0..n).map(|i| record(i as u64, (i + 1) as f64)).collect()
    }

    #[test]
    fn batches_have_exact_size_and_drop_remainder() {
        let owned = records(23);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let ws = batch_workloads(&refs, 10, 0, LabelMode::Sum);
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.query_indices.len() == 10));
        // No index repeats across workloads.
        let mut all: Vec<usize> = ws.iter().flat_map(|w| w.query_indices.clone()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn sum_label_adds_member_resources_componentwise() {
        let owned = records(4);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let ws = batch_workloads(&refs, 4, 1, LabelMode::Sum);
        assert_eq!(ws.len(), 1);
        let total = 1.0 + 2.0 + 3.0 + 4.0;
        assert!((ws[0].y.memory_mb - total).abs() < 1e-12);
        assert!((ws[0].y.cpu_ms - total * 3.0).abs() < 1e-12);
        assert!((ws[0].y.io_pages - total * 10.0).abs() < 1e-12);
        assert!((ws[0].y_mb() - total).abs() < 1e-12);
    }

    #[test]
    fn max_label_takes_heaviest_member_per_resource() {
        let owned = records(4);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let ws = batch_workloads(&refs, 4, 1, LabelMode::Max);
        assert!((ws[0].y.memory_mb - 4.0).abs() < 1e-12);
        assert!((ws[0].y.cpu_ms - 12.0).abs() < 1e-12);
        assert!((ws[0].y.io_pages - 40.0).abs() < 1e-12);
    }

    #[test]
    fn batching_is_deterministic_and_seed_sensitive() {
        let owned = records(30);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        assert_eq!(
            batch_workloads(&refs, 10, 5, LabelMode::Sum),
            batch_workloads(&refs, 10, 5, LabelMode::Sum)
        );
        assert_ne!(
            batch_workloads(&refs, 10, 5, LabelMode::Sum),
            batch_workloads(&refs, 10, 6, LabelMode::Sum)
        );
    }

    #[test]
    fn batch_size_one_matches_per_query_labels() {
        let owned = records(5);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let ws = batch_workloads(&refs, 1, 0, LabelMode::Sum);
        assert_eq!(ws.len(), 5);
        for w in &ws {
            assert_eq!(w.y, refs[w.query_indices[0]].resources);
        }
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        let owned = records(3);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        batch_workloads(&refs, 0, 0, LabelMode::Sum);
    }

    #[test]
    fn variable_batches_stay_within_bounds_and_partition() {
        let owned = records(100);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let ws = batch_workloads_variable(&refs, 5, 15, 3, LabelMode::Sum);
        assert!(ws.len() >= 100 / 15);
        let mut seen = std::collections::HashSet::new();
        for w in &ws {
            assert!(w.query_indices.len() >= 5 && w.query_indices.len() <= 15);
            for &i in &w.query_indices {
                assert!(seen.insert(i), "no index may repeat");
            }
            let expect: ResourceVector = w.query_indices.iter().map(|&i| refs[i].resources).sum();
            assert!(w.y.abs_diff(expect).as_array().iter().all(|d| *d < 1e-12));
        }
        // Sizes actually vary.
        let sizes: std::collections::HashSet<usize> =
            ws.iter().map(|w| w.query_indices.len()).collect();
        assert!(sizes.len() > 1, "variable batching must produce varied sizes");
    }

    #[test]
    fn variable_batching_with_equal_bounds_matches_fixed() {
        let owned = records(40);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        let var = batch_workloads_variable(&refs, 10, 10, 3, LabelMode::Sum);
        assert_eq!(var.len(), 4);
        assert!(var.iter().all(|w| w.query_indices.len() == 10));
    }

    #[test]
    #[should_panic(expected = "min_size must not exceed max_size")]
    fn variable_batching_validates_bounds() {
        let owned = records(10);
        let refs: Vec<&QueryRecord> = owned.iter().collect();
        batch_workloads_variable(&refs, 8, 4, 0, LabelMode::Sum);
    }
}
