//! Typed construction of [`LearnedWmp`] models: a declarative
//! [`TemplateSpec`] replaces caller-side `Box<dyn TemplateLearner>` plumbing,
//! and [`LearnedWmpBuilder`] validates every hyper-parameter *before* any
//! training work starts.
//!
//! ```
//! use learnedwmp_core::{LearnedWmp, ModelKind, TemplateSpec};
//!
//! let log = wmp_workloads::tpcc::generate(300, 7).unwrap();
//! let model = LearnedWmp::builder()
//!     .model(ModelKind::Xgb)
//!     .templates(TemplateSpec::PlanKMeans { k: 10, seed: 42 })
//!     .batch_size(10)
//!     .fit(&log)
//!     .unwrap();
//! assert!(model.predict_workload(&log.records.iter().collect::<Vec<_>>()[..10]).unwrap() > 0.0);
//! ```

use wmp_mlkit::{MlError, MlResult};
use wmp_plan::Catalog;
use wmp_workloads::{QueryLog, QueryRecord};

use crate::histogram::HistogramMode;
use crate::learned::{LearnedWmp, LearnedWmpConfig};
use crate::model::ModelKind;
use crate::template::{
    DbscanTemplates, PlanKMeansTemplates, RuleBasedTemplates, TemplateLearner, TextMode,
    TextTemplates,
};
use crate::workload::{LabelMode, Workload};

/// Declarative choice of template learner (TR3). The builder turns a spec
/// into the concrete [`TemplateLearner`] at fit time, so call sites never
/// handle trait objects.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateSpec {
    /// The paper's method: k-means over standardized plan features
    /// (Algorithm 1).
    PlanKMeans {
        /// Number of templates (histogram length).
        k: usize,
        /// Clustering seed.
        seed: u64,
    },
    /// Expert-style structural rules (Fig. 9 "rule based").
    RuleBased,
    /// SQL-text featurization (bag-of-words / text-mining / embeddings) then
    /// k-means (Fig. 9).
    Text {
        /// Which text featurization to use.
        mode: TextMode,
        /// Number of templates.
        k: usize,
        /// Clustering seed.
        seed: u64,
    },
    /// Density clustering (§V comparison).
    Dbscan {
        /// Neighborhood radius in standardized feature space.
        eps: f64,
        /// Minimum neighbors for a core point.
        min_pts: usize,
    },
}

impl Default for TemplateSpec {
    fn default() -> Self {
        TemplateSpec::PlanKMeans { k: 30, seed: 42 }
    }
}

impl TemplateSpec {
    /// Validates the spec without doing any work.
    ///
    /// # Errors
    /// Returns [`MlError::InvalidHyperparameter`] for out-of-range values.
    pub fn validate(&self) -> MlResult<()> {
        match *self {
            TemplateSpec::PlanKMeans { k, .. } | TemplateSpec::Text { k, .. } if k == 0 => {
                Err(MlError::InvalidHyperparameter("template count k must be >= 1".into()))
            }
            TemplateSpec::Dbscan { eps, .. } if !(eps > 0.0 && eps.is_finite()) => {
                Err(MlError::InvalidHyperparameter(format!(
                    "dbscan eps = {eps} must be finite and > 0"
                )))
            }
            TemplateSpec::Dbscan { min_pts: 0, .. } => {
                Err(MlError::InvalidHyperparameter("dbscan min_pts must be >= 1".into()))
            }
            _ => Ok(()),
        }
    }

    /// Builds the unfitted concrete learner this spec describes.
    pub fn build(&self) -> Box<dyn TemplateLearner> {
        match *self {
            TemplateSpec::PlanKMeans { k, seed } => Box::new(PlanKMeansTemplates::new(k, seed)),
            TemplateSpec::RuleBased => Box::new(RuleBasedTemplates::new()),
            TemplateSpec::Text { mode, k, seed } => Box::new(TextTemplates::new(mode, k, seed)),
            TemplateSpec::Dbscan { eps, min_pts } => Box::new(DbscanTemplates::new(eps, min_pts)),
        }
    }
}

/// Where the builder's template learner comes from: a declarative spec or a
/// caller-supplied custom implementation.
enum TemplateSource {
    Spec(TemplateSpec),
    Custom(Box<dyn TemplateLearner>),
}

/// Fluent, validated construction of [`LearnedWmp`] — see the module docs
/// for the canonical example. Obtained from [`LearnedWmp::builder`].
pub struct LearnedWmpBuilder {
    config: LearnedWmpConfig,
    templates: TemplateSource,
}

impl Default for LearnedWmpBuilder {
    fn default() -> Self {
        LearnedWmpBuilder {
            config: LearnedWmpConfig::default(),
            templates: TemplateSource::Spec(TemplateSpec::default()),
        }
    }
}

impl LearnedWmpBuilder {
    /// Starts from the paper's defaults (XGB, k = 30 plan-k-means templates,
    /// s = 10, sum labels, count histograms, seed 42).
    pub fn new() -> Self {
        Self::default()
    }

    /// Learner family for the distribution regressor (TR6).
    #[must_use]
    pub fn model(mut self, model: ModelKind) -> Self {
        self.config.model = model;
        self
    }

    /// Template learner specification (TR3).
    #[must_use]
    pub fn templates(mut self, spec: TemplateSpec) -> Self {
        self.templates = TemplateSource::Spec(spec);
        self
    }

    /// Escape hatch: a custom [`TemplateLearner`] implementation. Such
    /// models train and predict normally but cannot be persisted unless the
    /// learner implements [`TemplateLearner::save_params`].
    #[must_use]
    pub fn template_learner(mut self, learner: Box<dyn TemplateLearner>) -> Self {
        self.templates = TemplateSource::Custom(learner);
        self
    }

    /// Workload batch size `s` (TR4; the paper settles on 10).
    #[must_use]
    pub fn batch_size(mut self, s: usize) -> Self {
        self.config.batch_size = s;
        self
    }

    /// Label aggregation (sum per the paper's prose; max as ablation).
    #[must_use]
    pub fn label_mode(mut self, mode: LabelMode) -> Self {
        self.config.label_mode = mode;
        self
    }

    /// Histogram normalization (counts per the paper; frequencies ablation).
    #[must_use]
    pub fn histogram_mode(mut self, mode: HistogramMode) -> Self {
        self.config.histogram_mode = mode;
        self
    }

    /// Seed for workload batching.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates every hyper-parameter without training.
    ///
    /// # Errors
    /// Returns [`MlError::InvalidHyperparameter`] for out-of-range values.
    pub fn validate(&self) -> MlResult<()> {
        if self.config.batch_size == 0 {
            return Err(MlError::InvalidHyperparameter("batch_size must be >= 1".into()));
        }
        if let TemplateSource::Spec(spec) = &self.templates {
            spec.validate()?;
        }
        Ok(())
    }

    /// Trains on a full query log (TR3–TR6).
    ///
    /// # Errors
    /// Returns [`MlError::InvalidHyperparameter`] before any work for bad
    /// settings, then propagates template-learning and regression errors.
    pub fn fit(self, log: &QueryLog) -> MlResult<LearnedWmp> {
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        self.fit_refs(&refs, &log.catalog)
    }

    /// Trains on a slice of owned records (no double-reference gymnastics).
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmpBuilder::fit`].
    pub fn fit_records(self, records: &[QueryRecord], catalog: &Catalog) -> MlResult<LearnedWmp> {
        let refs: Vec<&QueryRecord> = records.iter().collect();
        self.fit_refs(&refs, catalog)
    }

    /// Trains on a slice of record references (the shape produced by
    /// train/test splits).
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmpBuilder::fit`].
    pub fn fit_refs(self, records: &[&QueryRecord], catalog: &Catalog) -> MlResult<LearnedWmp> {
        self.validate()?;
        let (config, learner) = self.into_parts();
        LearnedWmp::fit_impl(config, learner, records, catalog, None)
    }

    /// Trains on pre-built workloads — the variable-length-workload extension
    /// (§I): pass batches from [`crate::workload::batch_workloads_variable`].
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmpBuilder::fit`].
    pub fn fit_workloads(
        self,
        records: &[&QueryRecord],
        catalog: &Catalog,
        workloads: Vec<Workload>,
    ) -> MlResult<LearnedWmp> {
        self.validate()?;
        let (config, learner) = self.into_parts();
        LearnedWmp::fit_impl(config, learner, records, catalog, Some(workloads))
    }

    fn into_parts(self) -> (LearnedWmpConfig, Box<dyn TemplateLearner>) {
        let learner = match self.templates {
            TemplateSource::Spec(spec) => spec.build(),
            TemplateSource::Custom(learner) => learner,
        };
        (self.config, learner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_bad_hyperparameters_before_training() {
        let log = wmp_workloads::tpcc::generate(50, 1).unwrap();
        let bad = [
            LearnedWmp::builder().batch_size(0),
            LearnedWmp::builder().templates(TemplateSpec::PlanKMeans { k: 0, seed: 1 }),
            LearnedWmp::builder().templates(TemplateSpec::Text {
                mode: TextMode::BagOfWords,
                k: 0,
                seed: 1,
            }),
            LearnedWmp::builder().templates(TemplateSpec::Dbscan { eps: 0.0, min_pts: 3 }),
            LearnedWmp::builder().templates(TemplateSpec::Dbscan { eps: f64::NAN, min_pts: 3 }),
            LearnedWmp::builder().templates(TemplateSpec::Dbscan { eps: 1.0, min_pts: 0 }),
        ];
        for b in bad {
            assert!(matches!(b.fit(&log), Err(MlError::InvalidHyperparameter(_))));
        }
    }

    #[test]
    fn every_template_spec_trains() {
        let log = wmp_workloads::tpcc::generate(250, 3).unwrap();
        let specs = [
            TemplateSpec::PlanKMeans { k: 6, seed: 1 },
            TemplateSpec::RuleBased,
            TemplateSpec::Text { mode: TextMode::BagOfWords, k: 5, seed: 1 },
            TemplateSpec::Dbscan { eps: 1.0, min_pts: 4 },
        ];
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        for spec in specs {
            let model = LearnedWmp::builder()
                .model(ModelKind::Ridge)
                .templates(spec.clone())
                .fit(&log)
                .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert!(model.predict_workload(&probe).unwrap().is_finite(), "{spec:?}");
        }
    }

    #[test]
    fn fit_and_fit_refs_produce_identical_models() {
        let log = wmp_workloads::tpcc::generate(300, 9).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let make = || {
            LearnedWmp::builder()
                .model(ModelKind::Xgb)
                .templates(TemplateSpec::PlanKMeans { k: 8, seed: 4 })
                .batch_size(10)
                .seed(42)
        };
        let from_log = make().fit(&log).unwrap();
        let from_refs = make().fit_refs(&refs, &log.catalog).unwrap();
        for chunk in refs.chunks(10).take(4) {
            assert_eq!(
                from_log.predict_workload(chunk).unwrap().to_bits(),
                from_refs.predict_workload(chunk).unwrap().to_bits()
            );
            let a = from_log.predict_resources(chunk).unwrap();
            let b = from_refs.predict_resources(chunk).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn custom_template_learner_is_accepted() {
        let log = wmp_workloads::tpcc::generate(200, 2).unwrap();
        let model = LearnedWmp::builder()
            .model(ModelKind::Dt)
            .template_learner(Box::new(RuleBasedTemplates::new()))
            .fit(&log)
            .unwrap();
        assert_eq!(model.templates().name(), "rule_based");
    }

    #[test]
    fn fit_records_accepts_owned_slices() {
        let log = wmp_workloads::tpcc::generate(200, 6).unwrap();
        let model = LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .templates(TemplateSpec::PlanKMeans { k: 5, seed: 2 })
            .fit_records(&log.records, &log.catalog)
            .unwrap();
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        assert!(model.predict_workload(&probe).unwrap() > 0.0);
    }
}
