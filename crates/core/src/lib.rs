//! # learnedwmp-core — the paper's contribution
//!
//! LearnedWMP predicts the working-memory demand of a *workload* (a batch of
//! SQL queries) from the distribution of its queries over learned query
//! templates, instead of summing per-query estimates. This crate implements
//! the full paper pipeline:
//!
//! - [`template`] — TR3: template learning (plan-feature k-means, plus the
//!   rule-based / bag-of-words / text-mining / embedding / DBSCAN
//!   alternatives of Figs. 9 and §V);
//! - [`workload`] — TR4: fixed-size workload batching and labels;
//! - [`histogram`] — TR5: workload histograms (Algorithm 2);
//! - [`model`] — the five learner families (DNN/Ridge/DT/RF/XGB);
//! - [`learned`] — TR6 + IN1–IN5: the LearnedWMP model;
//! - [`builder`] — validated, fluent construction ([`LearnedWmp::builder`]);
//! - [`single`] — the SingleWMP baselines (ML per-query sums and the DBMS
//!   heuristic);
//! - [`predictor`] — the [`WorkloadPredictor`] trait every family serves
//!   through;
//! - [`handle`] — [`PredictorHandle`]: shared, hot-swappable model handles
//!   for concurrent serving;
//! - [`codec`] — versioned binary persistence (`save_to` / `load_from`);
//! - [`online`] — the deployment loop: warm-start from a shipped artifact,
//!   observe, retrain;
//! - [`eval`] — the measurement harness behind Figs. 4–8;
//! - [`config`] — paper-scale experiment configuration.

#![warn(missing_docs)]

pub mod builder;
pub mod codec;
pub mod config;
pub mod eval;
pub mod handle;
pub mod histogram;
pub mod learned;
pub mod model;
pub mod online;
pub mod predictor;
pub mod single;
pub mod template;
pub mod workload;

pub use builder::{LearnedWmpBuilder, TemplateSpec};
pub use config::{DatasetConfig, ExperimentConfig};
pub use eval::{EvalConfig, EvalContext, ModelReport};
pub use handle::{ModelSnapshot, PredictorHandle, SwapOutcome};
pub use histogram::{build_histogram, HistogramMode};
pub use learned::{LearnedWmp, LearnedWmpConfig, TrainTimings};
pub use model::{Approach, ModelKind};
pub use online::{OnlinePolicy, OnlineWmp, RetrainOutcome};
pub use predictor::WorkloadPredictor;
pub use single::{SingleWmp, SingleWmpDbms};
pub use template::{
    DbscanTemplates, PlanKMeansTemplates, RuleBasedTemplates, TemplateLearner, TextMode,
    TextTemplates,
};
pub use workload::{batch_workloads, batch_workloads_variable, LabelMode, Workload};
// Resource-target vocabulary from the planning substrate, re-exported so
// multi-output callers need only this crate.
pub use wmp_plan::{ResourceKind, ResourceVector, N_RESOURCES};
