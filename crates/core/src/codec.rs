//! Versioned, self-describing, dependency-free binary persistence for
//! trained [`LearnedWmp`] models — the artifact format behind the paper's
//! §I deployment story (train offline, ship the model into the DBMS, load at
//! startup, predict per arriving workload).
//!
//! # Format (version 2)
//!
//! All integers are little-endian; `f64` values are IEEE-754 bit patterns,
//! so save → load → predict is **bit-exact**. The container is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   b"LWMP"
//! 4       2     format version (u16, currently 2)
//! 6       2     reserved flags (u16, must be 0)
//! 8       ..    body (see below)
//! end-8   8     FNV-1a-64 checksum of every preceding byte
//! ```
//!
//! The body is written with the [`wmp_mlkit::codec`] primitives:
//!
//! ```text
//! config        model kind (u8), batch_size (u64), label mode (u8),
//!               histogram mode (u8), batching seed (u64)
//! provenance    n_train_workloads (u64), training timings (3 × f64:
//!               template/histogram/fit milliseconds)
//! templates     learner tag (u8), payload length (u64), payload
//! regressor     payload length (u64), payload:
//!                 wrapper tag (u8): 0 = plain, 1 = multi-head
//!                 0 → one regressor payload (decoder = config model kind)
//!                 1 → a [`wmp_mlkit::MultiHead`] payload whose per-head
//!                     payloads decode via the config model kind
//! ```
//!
//! Template learner tags: 1 = plan-k-means, 2 = rule-based,
//! 3 = bag-of-words, 4 = text-mining, 5 = word-embeddings, 6 = DBSCAN.
//! Section payloads are length-prefixed so future readers can skip sections
//! they do not understand, and the loader rejects payloads that decode to
//! fewer/more bytes than declared.
//!
//! Version 1 artifacts (written before multi-resource targets existed) are
//! identical except the regressor payload has **no wrapper tag** — it is
//! always one plain scalar regressor. The loader still reads them; the
//! resulting model predicts memory natively and reports CPU/IO as zero via
//! [`wmp_plan::ResourceVector::from_partial`] semantics.
//!
//! # Versioning policy
//!
//! - The format version is bumped only for **incompatible** layout changes;
//!   a reader supports exactly the versions it lists (currently: 1 and 2)
//!   and rejects others with a [`MlError::Codec`] naming both versions.
//! - Tag spaces (model kinds, template learners, tree-node/optimizer tags)
//!   are **append-only**: values are never reassigned. New learners get new
//!   tags, and old readers fail cleanly on unknown tags.
//! - The trailing checksum makes truncation and bit corruption a loud
//!   [`MlError::Codec`] instead of a silently wrong model.

use std::io::{Read, Write};
use std::path::Path;

use wmp_mlkit::codec as c;
use wmp_mlkit::{MlError, MlResult, MultiHead, Regressor};
use wmp_obs::Level;

use crate::histogram::HistogramMode;
use crate::learned::{LearnedWmp, LearnedWmpConfig, TrainTimings};
use crate::model::ModelKind;
use crate::template::{
    DbscanTemplates, PlanKMeansTemplates, RuleBasedTemplates, TemplateLearner, TextTemplates,
};
use crate::workload::LabelMode;

/// File magic: the first four bytes of every persisted model.
pub const MAGIC: [u8; 4] = *b"LWMP";

/// The container format version this build writes. The loader also reads
/// version-1 artifacts (scalar-memory models from before multi-resource
/// targets).
pub const FORMAT_VERSION: u16 = 2;

/// The oldest container format version the loader still reads.
pub const MIN_FORMAT_VERSION: u16 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// The template-learner tag space: `(tag, learner name)` pairs, declared in
/// assignment order. The tag space is **append-only** — tags are written
/// into artifacts, so an entry may never be removed, renumbered, or reused;
/// new learners take the next free tag at the end. The `codec_tags` lint
/// checks uniqueness and monotonic assignment of this table.
const TEMPLATE_TAGS: &[(u8, &str)] = &[
    (1, "query_plan"),
    (2, "rule_based"),
    (3, "bag_of_words"),
    (4, "text_mining"),
    (5, "word_embeddings"),
    (6, "dbscan"),
];

fn template_tag(name: &str) -> MlResult<u8> {
    TEMPLATE_TAGS.iter().find(|&&(_, n)| n == name).map(|&(tag, _)| tag).ok_or_else(|| {
        c::codec_err(format!(
            "cannot persist custom template learner '{name}' (no registered codec tag)"
        ))
    })
}

fn read_template(tag: u8, r: &mut dyn Read) -> MlResult<Box<dyn TemplateLearner>> {
    let learner: Box<dyn TemplateLearner> = match tag {
        1 => Box::new(PlanKMeansTemplates::read_params(r)?),
        2 => Box::new(RuleBasedTemplates::read_params(r)?),
        3..=5 => Box::new(TextTemplates::read_params(r)?),
        6 => Box::new(DbscanTemplates::read_params(r)?),
        other => return Err(c::codec_err(format!("unknown template learner tag {other}"))),
    };
    // The text payload re-encodes its mode; reject artifacts where the
    // container tag and the payload disagree about what was decoded.
    let decoded_tag = template_tag(learner.name())?;
    if decoded_tag != tag {
        return Err(c::codec_err(format!(
            "template tag {tag} decoded as '{}' (tag {decoded_tag}) — tag/payload mismatch",
            learner.name()
        )));
    }
    Ok(learner)
}

fn read_regressor(kind: ModelKind, r: &mut dyn Read) -> MlResult<Box<dyn Regressor>> {
    Ok(match kind {
        ModelKind::Dnn => Box::new(wmp_mlkit::mlp::Mlp::read_params(r)?),
        ModelKind::Ridge => Box::new(wmp_mlkit::ridge::Ridge::read_params(r)?),
        ModelKind::Dt => Box::new(wmp_mlkit::tree::DecisionTree::read_params(r)?),
        ModelKind::Rf => Box::new(wmp_mlkit::forest::RandomForest::read_params(r)?),
        ModelKind::Xgb => Box::new(wmp_mlkit::gbdt::GradientBoosting::read_params(r)?),
    })
}

/// Wrapper tag inside the version-2 regressor section: a plain regressor
/// decoded by the config's model kind.
const WRAPPER_PLAIN: u8 = 0;
/// Wrapper tag inside the version-2 regressor section: a [`MultiHead`] whose
/// per-head payloads decode via the config's model kind.
const WRAPPER_MULTI_HEAD: u8 = 1;

/// Decodes the regressor-section payload for the given container version.
fn read_wrapped_regressor(
    version: u16,
    kind: ModelKind,
    r: &mut dyn Read,
) -> MlResult<Box<dyn Regressor>> {
    if version < 2 {
        // Version 1 carried a bare scalar regressor with no wrapper tag.
        return read_regressor(kind, r);
    }
    match c::read_u8(r)? {
        WRAPPER_PLAIN => read_regressor(kind, r),
        WRAPPER_MULTI_HEAD => {
            Ok(Box::new(MultiHead::read_params(r, &move |hr| read_regressor(kind, hr))?))
        }
        other => Err(c::codec_err(format!("unknown regressor wrapper tag {other}"))),
    }
}

fn label_mode_code(mode: LabelMode) -> u8 {
    match mode {
        LabelMode::Sum => 0,
        LabelMode::Max => 1,
    }
}

fn histogram_mode_code(mode: HistogramMode) -> u8 {
    match mode {
        HistogramMode::Counts => 0,
        HistogramMode::Frequencies => 1,
    }
}

/// Writes a length-prefixed section produced by `fill`, enforcing the same
/// [`c::MAX_SEQ_LEN`] byte cap the loader applies — a model that saves must
/// also load.
fn write_section(
    out: &mut Vec<u8>,
    fill: impl FnOnce(&mut Vec<u8>) -> MlResult<()>,
) -> MlResult<()> {
    let mut payload = Vec::new();
    fill(&mut payload)?;
    if payload.len() > c::MAX_SEQ_LEN {
        return Err(c::codec_err(format!(
            "section payload of {} bytes exceeds the loadable maximum of {} — refusing to \
             write an artifact the loader would reject",
            payload.len(),
            c::MAX_SEQ_LEN
        )));
    }
    c::write_usize(out, payload.len())?;
    out.extend_from_slice(&payload);
    Ok(())
}

/// Reads a length-prefixed section and decodes it with `parse`, rejecting
/// payloads the decoder does not consume exactly.
fn read_section<T>(
    r: &mut &[u8],
    what: &str,
    parse: impl FnOnce(&mut dyn Read) -> MlResult<T>,
) -> MlResult<T> {
    let len = c::read_len(r, &format!("{what} section"))?;
    if r.len() < len {
        return Err(c::codec_err(format!(
            "{what} section claims {len} bytes but only {} remain (truncated file?)",
            r.len()
        )));
    }
    let (payload, rest) = r.split_at(len);
    *r = rest;
    let mut payload_reader: &[u8] = payload;
    let value = parse(&mut payload_reader)?;
    if !payload_reader.is_empty() {
        return Err(c::codec_err(format!(
            "{what} section has {} undecoded trailing bytes",
            payload_reader.len()
        )));
    }
    Ok(value)
}

impl LearnedWmp {
    /// Serializes the trained model (config, template learner, regressor)
    /// into the versioned container described in the [module docs](self).
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or for custom template
    /// learners without a registered codec tag.
    pub fn save_to_writer(&self, w: &mut dyn Write) -> MlResult<()> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC);
        c::write_u16(&mut out, FORMAT_VERSION)?;
        c::write_u16(&mut out, 0)?; // reserved flags
        let config = self.config();
        c::write_u8(&mut out, config.model.code())?;
        c::write_usize(&mut out, config.batch_size)?;
        c::write_u8(&mut out, label_mode_code(config.label_mode))?;
        c::write_u8(&mut out, histogram_mode_code(config.histogram_mode))?;
        c::write_u64(&mut out, config.seed)?;
        c::write_usize(&mut out, self.n_train_workloads)?;
        c::write_f64(&mut out, self.timings.template_ms)?;
        c::write_f64(&mut out, self.timings.histogram_ms)?;
        c::write_f64(&mut out, self.timings.fit_ms)?;
        c::write_u8(&mut out, template_tag(self.templates().name())?)?;
        write_section(&mut out, |buf| self.templates().save_params(buf))?;
        let wrapper = if self.regressor().as_multi_head().is_some() {
            WRAPPER_MULTI_HEAD
        } else {
            WRAPPER_PLAIN
        };
        write_section(&mut out, |buf| {
            c::write_u8(buf, wrapper)?;
            self.regressor().save_params(buf)
        })?;
        let checksum = fnv1a64(&out);
        c::write_u64(&mut out, checksum)?;
        w.write_all(&out).map_err(|e| MlError::Codec(format!("write model: {e}")))
    }

    /// Clones the model through the codec (save → load in memory). The
    /// round trip is bit-exact, so the clone predicts identically to the
    /// source — this is how the serving layer snapshots a retrained model
    /// into a shareable copy without `LearnedWmp` implementing `Clone`
    /// (trait objects hold the learned state).
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmp::save_to_writer`].
    pub fn codec_clone(&self) -> MlResult<Self> {
        let mut bytes = Vec::with_capacity(4096);
        self.save_to_writer(&mut bytes)?;
        Self::load_from_reader(&mut bytes.as_slice())
    }

    /// Saves the model to a file (see [`LearnedWmp::save_to_writer`]).
    ///
    /// The artifact is fully serialized in memory, written to a temporary
    /// sibling file, and atomically renamed into place — so neither a
    /// serialization failure (e.g. a custom template learner with no codec
    /// tag) nor a mid-write I/O failure (full disk, killed process) ever
    /// truncates a previously good artifact at `path`.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on serialization or I/O failure.
    pub fn save_to(&self, path: impl AsRef<Path>) -> MlResult<()> {
        let path = path.as_ref();
        let span = wmp_obs::span!(
            Level::Info,
            target: "wmp_core::codec",
            "model_save",
            path = path.display().to_string(),
        );
        let mut bytes = Vec::with_capacity(4096);
        self.save_to_writer(&mut bytes)?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        if let Err(e) = std::fs::write(&tmp, &bytes) {
            std::fs::remove_file(&tmp).ok();
            return Err(MlError::Codec(format!("write {}: {e}", tmp.display())));
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            MlError::Codec(format!("rename {} -> {}: {e}", tmp.display(), path.display()))
        })?;
        wmp_obs::event!(
            Level::Info,
            target: "wmp_core::codec",
            "model_saved",
            bytes = bytes.len(),
        );
        drop(span);
        Ok(())
    }

    /// Loads a model written by [`LearnedWmp::save_to_writer`], verifying
    /// magic, format version, and checksum before decoding, and producing
    /// bit-identical predictions to the model that was saved.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] for unrecognized or corrupted artifacts
    /// (wrong magic, unsupported version, checksum/truncation failures,
    /// unknown tags, malformed payloads).
    pub fn load_from_reader(r: &mut dyn Read) -> MlResult<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes).map_err(|e| MlError::Codec(format!("read model: {e}")))?;
        // Header (8) + checksum (8) is the absolute minimum.
        if bytes.len() < 16 {
            return Err(c::codec_err(format!(
                "model file is {} bytes — too short to be a LearnedWMP artifact",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(c::codec_err("bad magic: not a LearnedWMP model file"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(c::codec_err(format!(
                "unsupported format version {version} (this build reads versions \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
        if flags != 0 {
            return Err(c::codec_err(format!(
                "unsupported reserved flags {flags:#06x} (this build reads flags 0)"
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = tail
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| c::codec_err("truncated checksum trailer"))?;
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(c::codec_err(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) — \
                 the file is corrupted or truncated"
            )));
        }
        let mut cursor: &[u8] = &body[8..];
        let r = &mut cursor;
        let model_code = c::read_u8(r)?;
        let model = ModelKind::from_code(model_code)
            .ok_or_else(|| c::codec_err(format!("unknown model kind code {model_code}")))?;
        let batch_size = c::read_usize(r)?;
        let label_mode = match c::read_u8(r)? {
            0 => LabelMode::Sum,
            1 => LabelMode::Max,
            other => return Err(c::codec_err(format!("unknown label mode code {other}"))),
        };
        let histogram_mode = match c::read_u8(r)? {
            0 => HistogramMode::Counts,
            1 => HistogramMode::Frequencies,
            other => return Err(c::codec_err(format!("unknown histogram mode code {other}"))),
        };
        let seed = c::read_u64(r)?;
        let config = LearnedWmpConfig { model, batch_size, label_mode, histogram_mode, seed };
        let n_train_workloads = c::read_usize(r)?;
        let timings = TrainTimings {
            template_ms: c::read_f64(r)?,
            histogram_ms: c::read_f64(r)?,
            fit_ms: c::read_f64(r)?,
        };
        let template_tag = c::read_u8(r)?;
        let templates = read_section(r, "template", |pr| read_template(template_tag, pr))?;
        let regressor =
            read_section(r, "regressor", |pr| read_wrapped_regressor(version, model, pr))?;
        if !r.is_empty() {
            return Err(c::codec_err(format!("{} undecoded bytes before the checksum", r.len())));
        }
        Ok(LearnedWmp::from_parts(config, templates, regressor, timings, n_train_workloads))
    }

    /// Loads a model from a file (see [`LearnedWmp::load_from_reader`]).
    ///
    /// # Errors
    /// Same conditions as [`LearnedWmp::load_from_reader`], plus file-open
    /// failures.
    pub fn load_from(path: impl AsRef<Path>) -> MlResult<Self> {
        let span = wmp_obs::span!(
            Level::Info,
            target: "wmp_core::codec",
            "model_load",
            path = path.as_ref().display().to_string(),
        );
        let mut file = std::fs::File::open(path.as_ref())
            .map_err(|e| MlError::Codec(format!("open {}: {e}", path.as_ref().display())))?;
        let model = Self::load_from_reader(&mut file)?;
        drop(span);
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemplateSpec;

    fn small_model(spec: TemplateSpec) -> (wmp_workloads::QueryLog, LearnedWmp) {
        let log = wmp_workloads::tpcc::generate(250, 3).unwrap();
        let model =
            LearnedWmp::builder().model(ModelKind::Ridge).templates(spec).fit(&log).unwrap();
        (log, model)
    }

    fn round_trip(model: &LearnedWmp) -> LearnedWmp {
        let mut buf = Vec::new();
        model.save_to_writer(&mut buf).unwrap();
        LearnedWmp::load_from_reader(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn every_template_spec_round_trips() {
        use crate::template::TextMode;
        let specs = [
            TemplateSpec::PlanKMeans { k: 6, seed: 1 },
            TemplateSpec::RuleBased,
            TemplateSpec::Text { mode: TextMode::BagOfWords, k: 5, seed: 1 },
            TemplateSpec::Text { mode: TextMode::TextMining, k: 5, seed: 1 },
            TemplateSpec::Text { mode: TextMode::Embedding, k: 5, seed: 1 },
            TemplateSpec::Dbscan { eps: 1.0, min_pts: 4 },
        ];
        for spec in specs {
            let (log, model) = small_model(spec.clone());
            let reloaded = round_trip(&model);
            assert_eq!(reloaded.templates().name(), model.templates().name(), "{spec:?}");
            let refs: Vec<&wmp_workloads::QueryRecord> = log.records.iter().collect();
            for chunk in refs.chunks(10).take(3) {
                assert_eq!(
                    model.predict_workload(chunk).unwrap().to_bits(),
                    reloaded.predict_workload(chunk).unwrap().to_bits(),
                    "{spec:?}"
                );
                assert_eq!(
                    model.predict_resources(chunk).unwrap(),
                    reloaded.predict_resources(chunk).unwrap(),
                    "{spec:?}"
                );
            }
        }
    }

    #[test]
    fn every_model_kind_round_trips_multi_output_bit_exact() {
        let log = wmp_workloads::tpcc::generate(250, 3).unwrap();
        let refs: Vec<&wmp_workloads::QueryRecord> = log.records.iter().collect();
        for kind in ModelKind::ALL {
            let model = LearnedWmp::builder()
                .model(kind)
                .templates(TemplateSpec::PlanKMeans { k: 6, seed: 1 })
                .fit(&log)
                .unwrap();
            // Non-Ridge families train as multi-head wrappers; Ridge is
            // native multi-output. Both shapes must survive the codec.
            let reloaded = round_trip(&model);
            for chunk in refs.chunks(10).take(3) {
                let a = model.predict_resources(chunk).unwrap();
                let b = reloaded.predict_resources(chunk).unwrap();
                assert_eq!(
                    a.as_array().map(f64::to_bits),
                    b.as_array().map(f64::to_bits),
                    "{kind:?}"
                );
                assert!(a.is_finite(), "{kind:?}: {a}");
            }
        }
    }

    #[test]
    fn metadata_survives_the_round_trip() {
        let (_, model) = small_model(TemplateSpec::PlanKMeans { k: 6, seed: 1 });
        let reloaded = round_trip(&model);
        assert_eq!(reloaded.config().model, model.config().model);
        assert_eq!(reloaded.config().batch_size, model.config().batch_size);
        assert_eq!(reloaded.n_train_workloads, model.n_train_workloads);
        assert_eq!(reloaded.timings.fit_ms.to_bits(), model.timings.fit_ms.to_bits());
        assert_eq!(reloaded.footprint_bytes(), model.footprint_bytes());
    }

    #[test]
    fn rejects_bad_magic_version_corruption_and_truncation() {
        let (_, model) = small_model(TemplateSpec::PlanKMeans { k: 4, seed: 1 });
        let mut bytes = Vec::new();
        model.save_to_writer(&mut bytes).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        let err = LearnedWmp::load_from_reader(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        let err = LearnedWmp::load_from_reader(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Nonzero reserved flags.
        let mut bad = bytes.clone();
        bad[6] = 0x01;
        let err = LearnedWmp::load_from_reader(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("flags"), "{err}");

        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let err = LearnedWmp::load_from_reader(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation at any point is an error, never a partial model.
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LearnedWmp::load_from_reader(&mut &bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        // Empty file.
        assert!(LearnedWmp::load_from_reader(&mut [].as_slice()).is_err());
    }

    #[test]
    fn template_tag_payload_mismatch_is_rejected() {
        use crate::template::TextMode;
        let (_, model) =
            small_model(TemplateSpec::Text { mode: TextMode::BagOfWords, k: 4, seed: 1 });
        let mut bytes = Vec::new();
        model.save_to_writer(&mut bytes).unwrap();
        // The template tag is the first byte after the fixed-size header +
        // config + provenance prefix (see the module docs): 8 + 19 + 32.
        let tag_offset = 59;
        assert_eq!(bytes[tag_offset], 3, "bag-of-words artifacts carry tag 3");
        bytes[tag_offset] = 5; // claim word-embeddings, keep the BoW payload
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = LearnedWmp::load_from_reader(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn failed_save_never_truncates_an_existing_artifact() {
        use wmp_plan::Catalog;
        use wmp_workloads::QueryRecord;

        /// A custom learner with no codec tag: training works, persisting
        /// fails (via the default `save_params`).
        struct Unpersistable(usize);
        impl TemplateLearner for Unpersistable {
            fn fit(&mut self, records: &[&QueryRecord], _catalog: &Catalog) -> MlResult<()> {
                self.0 = 4.min(records.len());
                Ok(())
            }
            fn assign(&self, record: &QueryRecord) -> MlResult<usize> {
                Ok(record.sql().len() % self.0)
            }
            fn n_templates(&self) -> usize {
                self.0
            }
            fn name(&self) -> &'static str {
                "unpersistable"
            }
        }

        let (log, good) = small_model(TemplateSpec::PlanKMeans { k: 4, seed: 1 });
        let path = std::env::temp_dir().join(format!("lwmp-atomic-{}.lwmp", std::process::id()));
        good.save_to(&path).unwrap();
        let good_bytes = std::fs::read(&path).unwrap();

        let custom = LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .template_learner(Box::new(Unpersistable(0)))
            .fit(&log)
            .unwrap();
        assert!(custom.save_to(&path).is_err(), "custom learner must not persist");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good_bytes,
            "a failed save must leave the previous artifact intact"
        );
        std::fs::remove_file(&path).ok();
    }
}
