//! Experiment-scale configuration: the paper's corpus sizes and per-benchmark
//! template counts, with a scaling knob for quick runs.

/// Per-benchmark generation/evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Number of queries to generate.
    pub n_queries: usize,
    /// Number of templates `k` for LearnedWMP (paper Fig. 10's optima).
    pub k_templates: usize,
    /// Generator seed.
    pub gen_seed: u64,
}

/// Full experiment configuration across the three benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// TPC-DS (paper: 93,000 queries, k ≈ 100 optimal).
    pub tpcds: DatasetConfig,
    /// JOB (paper: 2,300 queries, k ∈ [20, 40] optimal).
    pub job: DatasetConfig,
    /// TPC-C (paper: 3,958 queries, k ∈ [20, 40] optimal).
    pub tpcc: DatasetConfig,
    /// Workload batch size `s` (paper: 10).
    pub batch_size: usize,
    /// Train fraction (paper: 0.8).
    pub train_frac: f64,
    /// Split/batching seed.
    pub split_seed: u64,
}

impl ExperimentConfig {
    /// The paper's full scale.
    pub fn paper() -> Self {
        ExperimentConfig {
            tpcds: DatasetConfig { n_queries: 93_000, k_templates: 100, gen_seed: 1 },
            job: DatasetConfig { n_queries: 2_300, k_templates: 30, gen_seed: 2 },
            tpcc: DatasetConfig { n_queries: 3_958, k_templates: 20, gen_seed: 3 },
            batch_size: 10,
            train_frac: 0.8,
            split_seed: 42,
        }
    }

    /// A linearly scaled-down configuration (`scale` in `(0, 1]`) for quick
    /// runs; template counts shrink with the square root so histograms stay
    /// populated.
    pub fn scaled(scale: f64) -> Self {
        let s = scale.clamp(0.001, 1.0);
        let full = Self::paper();
        let shrink = |d: DatasetConfig| DatasetConfig {
            n_queries: ((d.n_queries as f64 * s) as usize).max(300),
            k_templates: ((d.k_templates as f64 * s.sqrt()) as usize).max(8),
            gen_seed: d.gen_seed,
        };
        ExperimentConfig {
            tpcds: shrink(full.tpcds),
            job: shrink(full.job),
            tpcc: shrink(full.tpcc),
            ..full
        }
    }

    /// A small smoke-test configuration used by integration tests.
    pub fn quick() -> Self {
        Self::scaled(0.02)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_numbers() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.tpcds.n_queries, 93_000);
        assert_eq!(c.job.n_queries, 2_300);
        assert_eq!(c.tpcc.n_queries, 3_958);
        assert_eq!(c.batch_size, 10);
        assert!((c.train_frac - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scaling_shrinks_monotonically_with_floors() {
        let half = ExperimentConfig::scaled(0.5);
        assert_eq!(half.tpcds.n_queries, 46_500);
        assert!(half.tpcds.k_templates < 100);
        let tiny = ExperimentConfig::scaled(0.0001);
        assert!(tiny.tpcds.n_queries >= 300);
        assert!(tiny.job.k_templates >= 8);
        let full = ExperimentConfig::scaled(1.0);
        assert_eq!(full.tpcds.n_queries, 93_000);
        assert_eq!(full.tpcds.k_templates, 100);
    }

    #[test]
    fn quick_config_is_small() {
        let q = ExperimentConfig::quick();
        assert!(q.tpcds.n_queries <= 2000);
        assert!(q.job.n_queries >= 300);
    }
}
