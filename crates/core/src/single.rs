//! The SingleWMP baselines (paper §IV): per-query memory prediction summed
//! over the workload — both the ML variants (eq. 11) and the DBMS heuristic.

use std::time::Instant;

use wmp_mlkit::{Matrix, MlError, MlResult, Regressor};
use wmp_plan::{ResourceVector, N_RESOURCES};
use wmp_workloads::QueryRecord;

use crate::model::{Approach, ModelKind};
use crate::workload::Workload;

/// A trained single-query model: plan features → per-query peak memory.
pub struct SingleWmp {
    model: ModelKind,
    regressor: Box<dyn Regressor>,
    /// Regressor fit time in milliseconds.
    pub fit_ms: f64,
    /// Number of training queries.
    pub n_train_queries: usize,
}

impl SingleWmp {
    /// Trains on individual queries (plan features, per-query labels).
    ///
    /// # Errors
    /// Propagates regression errors; fails on an empty training set.
    pub fn train(model: ModelKind, records: &[&QueryRecord]) -> MlResult<Self> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("SingleWmp::train"));
        }
        let rows: Vec<Vec<f64>> = records.iter().map(|r| r.features.clone()).collect();
        let x = Matrix::from_rows(&rows)?;
        // One target column per resource axis, memory first.
        let targets: Vec<Vec<f64>> = (0..N_RESOURCES)
            .map(|t| records.iter().map(|r| r.resources.as_array()[t]).collect())
            .collect();
        let mut regressor = model.build_multi(Approach::Single, records.len(), N_RESOURCES);
        let t0 = Instant::now();
        regressor.fit_multi(&x, &targets)?;
        let fit_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(SingleWmp { model, regressor, fit_ms, n_train_queries: records.len() })
    }

    /// Per-query memory prediction (MB).
    ///
    /// # Errors
    /// Propagates prediction errors.
    pub fn predict_query(&self, record: &QueryRecord) -> MlResult<f64> {
        self.regressor.predict_row(&record.features)
    }

    /// Per-query full-resource prediction (memory MB / CPU ms / IO pages).
    ///
    /// # Errors
    /// Propagates prediction errors.
    pub fn predict_query_resources(&self, record: &QueryRecord) -> MlResult<ResourceVector> {
        Ok(ResourceVector::from_partial(&self.regressor.predict_row_multi(&record.features)?))
    }

    /// Workload prediction = Σ per-query predictions (paper eq. 11), memory
    /// axis only.
    ///
    /// # Errors
    /// Propagates prediction errors.
    pub fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        let mut total = 0.0;
        for q in queries {
            total += self.predict_query(q)?;
        }
        Ok(total)
    }

    /// Workload resource prediction = componentwise Σ per-query predictions.
    ///
    /// # Errors
    /// Propagates prediction errors.
    pub fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        let mut total = ResourceVector::ZERO;
        for q in queries {
            total += self.predict_query_resources(q)?;
        }
        Ok(total)
    }

    /// Predicts every workload in a batched test set.
    ///
    /// # Errors
    /// Propagates per-workload errors.
    pub fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        workloads
            .iter()
            .map(|w| {
                let queries: Vec<&QueryRecord> =
                    w.query_indices.iter().map(|&i| records[i]).collect();
                self.predict_workload(&queries)
            })
            .collect()
    }

    /// The learner family.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Model size in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.regressor.footprint_bytes()
    }
}

/// The state-of-practice baseline: the DBMS optimizer's heuristic estimate,
/// summed over the workload. No ML, no training.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleWmpDbms;

impl SingleWmpDbms {
    /// Workload estimate = Σ per-query optimizer memory estimates (MB).
    pub fn predict_workload(&self, queries: &[&QueryRecord]) -> f64 {
        queries.iter().map(|q| q.dbms_estimate_mb()).sum()
    }

    /// Workload resource estimate = componentwise Σ per-query optimizer
    /// estimates (the cost-model side of the heuristic).
    pub fn predict_resources(&self, queries: &[&QueryRecord]) -> ResourceVector {
        queries.iter().map(|q| q.dbms_estimate).sum()
    }

    /// Predicts every workload in a batched test set.
    pub fn predict_workloads(&self, records: &[&QueryRecord], workloads: &[Workload]) -> Vec<f64> {
        workloads
            .iter()
            .map(|w| {
                let queries: Vec<&QueryRecord> =
                    w.query_indices.iter().map(|&i| records[i]).collect();
                self.predict_workload(&queries)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{batch_workloads, LabelMode};

    fn log() -> wmp_workloads::QueryLog {
        wmp_workloads::tpcc::generate(500, 3).unwrap()
    }

    #[test]
    fn trains_and_sums_per_query_predictions() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let m = SingleWmp::train(ModelKind::Xgb, &refs).unwrap();
        assert_eq!(m.n_train_queries, 500);
        assert!(m.fit_ms > 0.0);
        let w: f64 = m.predict_workload(&refs[..10]).unwrap();
        let parts: f64 = refs[..10].iter().map(|r| m.predict_query(r).unwrap()).sum();
        assert!((w - parts).abs() < 1e-9, "workload prediction is the sum of queries");
    }

    #[test]
    fn single_query_accuracy_is_reasonable() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let m = SingleWmp::train(ModelKind::Rf, &refs).unwrap();
        let preds: Vec<f64> = refs.iter().map(|r| m.predict_query(r).unwrap()).collect();
        let y: Vec<f64> = refs.iter().map(|r| r.true_memory_mb()).collect();
        let r2 = wmp_mlkit::metrics::r2(&y, &preds).unwrap();
        assert!(r2 > 0.7, "in-sample r2 = {r2}");
    }

    #[test]
    fn resource_predictions_cover_all_axes_and_sum_over_the_workload() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let m = SingleWmp::train(ModelKind::Rf, &refs).unwrap();
        let one = m.predict_query_resources(refs[0]).unwrap();
        assert!(one.is_finite(), "{one}");
        // Memory head is the scalar prediction.
        assert_eq!(one.memory_mb.to_bits(), m.predict_query(refs[0]).unwrap().to_bits());
        let w = m.predict_resources(&refs[..10]).unwrap();
        let parts: ResourceVector =
            refs[..10].iter().map(|r| m.predict_query_resources(r).unwrap()).sum();
        assert!(w.abs_diff(parts).as_array().iter().all(|d| *d < 1e-9));
        assert!(w.cpu_ms > 0.0 && w.io_pages > 0.0, "{w}");
        // In-sample CPU accuracy is meaningful, not noise.
        let y: Vec<f64> = refs.iter().map(|r| r.resources.cpu_ms).collect();
        let p: Vec<f64> =
            refs.iter().map(|r| m.predict_query_resources(r).unwrap().cpu_ms).collect();
        let r2 = wmp_mlkit::metrics::r2(&y, &p).unwrap();
        assert!(r2 > 0.7, "in-sample cpu r2 = {r2}");
    }

    #[test]
    fn dbms_baseline_sums_resource_estimates() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let expected: ResourceVector = refs[..10].iter().map(|r| r.dbms_estimate).sum();
        let got = SingleWmpDbms.predict_resources(&refs[..10]);
        assert!(got.abs_diff(expected).as_array().iter().all(|d| *d < 1e-9));
        assert!((got.memory_mb - SingleWmpDbms.predict_workload(&refs[..10])).abs() < 1e-9);
    }

    #[test]
    fn dbms_baseline_sums_estimates() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let dbms = SingleWmpDbms;
        let expected: f64 = refs[..10].iter().map(|r| r.dbms_estimate_mb()).sum();
        assert!((dbms.predict_workload(&refs[..10]) - expected).abs() < 1e-9);
        let ws = batch_workloads(&refs, 10, 0, LabelMode::Sum);
        let preds = dbms.predict_workloads(&refs, &ws);
        assert_eq!(preds.len(), ws.len());
        assert!(preds.iter().all(|p| *p > 0.0));
    }

    #[test]
    fn all_model_kinds_train_on_queries() {
        let log = log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        for kind in ModelKind::ALL {
            let m = SingleWmp::train(kind, &refs[..200]).unwrap();
            assert_eq!(m.model(), kind);
            assert!(m.footprint_bytes() > 0);
        }
    }

    #[test]
    fn empty_training_set_errors() {
        let empty: Vec<&QueryRecord> = Vec::new();
        assert!(SingleWmp::train(ModelKind::Ridge, &empty).is_err());
    }
}
