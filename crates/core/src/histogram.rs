//! Workload histograms (paper §II, Algorithm 2): the length-`k` vector of
//! per-template query counts that LearnedWMP's distribution regressor
//! consumes.

/// Raw counts vs. normalized frequencies — the `ablation_histogram` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramMode {
    /// `H[j]` = number of workload queries in template `j` (the paper's
    /// definition; Σ H = s).
    Counts,
    /// `H[j]` divided by the workload size (Σ H = 1) — invariant to `s`,
    /// useful for variable-length workloads.
    Frequencies,
}

/// Builds a workload histogram from per-query template assignments.
///
/// # Panics
/// Panics if an assignment is `>= k` (a template-learner contract violation).
pub fn build_histogram(assignments: &[usize], k: usize, mode: HistogramMode) -> Vec<f64> {
    let mut h = vec![0.0; k];
    for &a in assignments {
        assert!(a < k, "template id {a} out of range (k = {k})");
        h[a] += 1.0;
    }
    if mode == HistogramMode::Frequencies && !assignments.is_empty() {
        let n = assignments.len() as f64;
        for v in &mut h {
            *v /= n;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_worked_example() {
        // Fig. 3: 9 queries, k = 4 templates, histogram [3, 4, 0, 2].
        let assignments = [0, 0, 0, 1, 1, 1, 1, 3, 3];
        let h = build_histogram(&assignments, 4, HistogramMode::Counts);
        assert_eq!(h, vec![3.0, 4.0, 0.0, 2.0]);
        // Σ H = |Q| (paper eq. 4/8).
        assert_eq!(h.iter().sum::<f64>(), 9.0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let assignments = [0, 1, 1, 2];
        let h = build_histogram(&assignments, 3, HistogramMode::Frequencies);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_gives_zero_histogram() {
        let h = build_histogram(&[], 5, HistogramMode::Counts);
        assert_eq!(h, vec![0.0; 5]);
        let h = build_histogram(&[], 5, HistogramMode::Frequencies);
        assert_eq!(h, vec![0.0; 5]);
    }

    #[test]
    fn histograms_are_sparse_for_concentrated_workloads() {
        let assignments = [7usize; 10];
        let h = build_histogram(&assignments, 50, HistogramMode::Counts);
        assert_eq!(h[7], 10.0);
        assert_eq!(h.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_panics() {
        build_histogram(&[3], 3, HistogramMode::Counts);
    }
}
