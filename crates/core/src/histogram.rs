//! Workload histograms (paper §II, Algorithm 2): the length-`k` vector of
//! per-template query counts that LearnedWMP's distribution regressor
//! consumes.

use wmp_mlkit::{error::dim_mismatch, MlResult};

/// Raw counts vs. normalized frequencies — the `ablation_histogram` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramMode {
    /// `H[j]` = number of workload queries in template `j` (the paper's
    /// definition; Σ H = s).
    Counts,
    /// `H[j]` divided by the workload size (Σ H = 1) — invariant to `s`,
    /// useful for variable-length workloads.
    Frequencies,
}

/// Builds a workload histogram from per-query template assignments.
///
/// # Errors
/// Returns [`wmp_mlkit::MlError::DimensionMismatch`] if an assignment is
/// `>= k` (a template-learner contract violation). A resident serving daemon
/// must not crash on one bad assignment, so the violation surfaces as a
/// typed error rather than a panic.
pub fn build_histogram(assignments: &[usize], k: usize, mode: HistogramMode) -> MlResult<Vec<f64>> {
    let mut h = vec![0.0; k];
    for &a in assignments {
        if a >= k {
            return Err(dim_mismatch(format!("template id < {k}"), format!("template id {a}")));
        }
        h[a] += 1.0;
    }
    if mode == HistogramMode::Frequencies && !assignments.is_empty() {
        let n = assignments.len() as f64;
        for v in &mut h {
            *v /= n;
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_worked_example() {
        // Fig. 3: 9 queries, k = 4 templates, histogram [3, 4, 0, 2].
        let assignments = [0, 0, 0, 1, 1, 1, 1, 3, 3];
        let h = build_histogram(&assignments, 4, HistogramMode::Counts).unwrap();
        assert_eq!(h, vec![3.0, 4.0, 0.0, 2.0]);
        // Σ H = |Q| (paper eq. 4/8).
        assert_eq!(h.iter().sum::<f64>(), 9.0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let assignments = [0, 1, 1, 2];
        let h = build_histogram(&assignments, 3, HistogramMode::Frequencies).unwrap();
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_gives_zero_histogram() {
        let h = build_histogram(&[], 5, HistogramMode::Counts).unwrap();
        assert_eq!(h, vec![0.0; 5]);
        let h = build_histogram(&[], 5, HistogramMode::Frequencies).unwrap();
        assert_eq!(h, vec![0.0; 5]);
    }

    #[test]
    fn histograms_are_sparse_for_concentrated_workloads() {
        let assignments = [7usize; 10];
        let h = build_histogram(&assignments, 50, HistogramMode::Counts).unwrap();
        assert_eq!(h[7], 10.0);
        assert_eq!(h.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn out_of_range_assignment_is_a_typed_error_not_a_panic() {
        let err = build_histogram(&[3], 3, HistogramMode::Counts).unwrap_err();
        assert!(err.to_string().contains("template id 3"), "{err}");
        // The boundary id is fine.
        assert!(build_histogram(&[2], 3, HistogramMode::Counts).is_ok());
    }
}
