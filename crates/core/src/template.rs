//! Query-template learning (paper §III-B1 and the Fig. 9 comparison): map
//! each query to one of `k` templates.
//!
//! - [`PlanKMeansTemplates`] — the paper's method: k-means over standardized
//!   plan features (Algorithm 1).
//! - [`RuleBasedTemplates`] — expert-style structural rules.
//! - [`TextTemplates`] — bag-of-words / text-mining / word-embedding
//!   featurization of the SQL text, then k-means.
//! - [`DbscanTemplates`] — density clustering (the §V comparison where
//!   k-means won).

use std::collections::HashMap;

use wmp_mlkit::dbscan::{dbscan, DbscanConfig, NOISE};
use wmp_mlkit::kmeans::{KMeans, KMeansConfig};
use wmp_mlkit::linalg::sq_dist;
use wmp_mlkit::scaler::StandardScaler;
use wmp_mlkit::{Matrix, MlError, MlResult};
use wmp_plan::Catalog;
use wmp_text::bow::Vectorizer;
use wmp_text::embed::{EmbedConfig, WordEmbedder};
use wmp_workloads::QueryRecord;

/// Assigns queries to templates. Implementations are fitted on the training
/// log (TR3) and then used during both histogram construction (TR5) and
/// inference (IN3).
///
/// `Send + Sync`: once fitted, `assign` is called concurrently from every
/// serving thread, so implementations must keep assignment-time state
/// immutable (or behind a lock).
pub trait TemplateLearner: Send + Sync {
    /// Learns templates from training records.
    ///
    /// # Errors
    /// Returns [`MlError`] for empty inputs or clustering failures.
    fn fit(&mut self, records: &[&QueryRecord], catalog: &Catalog) -> MlResult<()>;

    /// Assigns one query to a template id in `0..n_templates()`.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before `fit`.
    fn assign(&self, record: &QueryRecord) -> MlResult<usize>;

    /// Number of templates (histogram length `k`).
    fn n_templates(&self) -> usize;

    /// Stable name used in reports.
    fn name(&self) -> &'static str;

    /// Serializes the fitted state with the [`wmp_mlkit::codec`] primitives
    /// so a trained learner can be persisted behind the trait object.
    /// Loading needs the concrete type, so each learner exposes an inherent
    /// `read_params` constructor; [`crate::codec`] dispatches on a tag.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, or by default for custom
    /// learners that do not support persistence.
    fn save_params(&self, _w: &mut dyn std::io::Write) -> MlResult<()> {
        Err(MlError::Codec(format!(
            "template learner '{}' does not support persistence",
            self.name()
        )))
    }
}

/// Subsample cap for clustering-based learners: template learning needs a
/// representative sample, not every query (keeps TR3 fast on 93k-query logs).
const MAX_FIT_SAMPLES: usize = 20_000;

fn subsample_rows(rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    if rows.len() <= MAX_FIT_SAMPLES {
        return rows;
    }
    // Deterministic stride-based thinning preserves template diversity
    // because generators rotate templates round-robin.
    let stride = rows.len().div_ceil(MAX_FIT_SAMPLES);
    rows.into_iter().step_by(stride).collect()
}

/// The paper's template learner: k-means over standardized plan features.
#[derive(Debug, Clone)]
pub struct PlanKMeansTemplates {
    k: usize,
    seed: u64,
    scaler: StandardScaler,
    kmeans: Option<KMeans>,
}

impl PlanKMeansTemplates {
    /// Creates an unfitted learner with `k` templates.
    pub fn new(k: usize, seed: u64) -> Self {
        PlanKMeansTemplates { k, seed, scaler: StandardScaler::new(), kmeans: None }
    }

    /// The learned k-means model (for inspection/size accounting).
    pub fn kmeans(&self) -> Option<&KMeans> {
        self.kmeans.as_ref()
    }

    /// Picks `k` with the paper's elbow method (§III-B1): runs k-means for
    /// each candidate, computes the inertia curve, and returns the knee.
    ///
    /// # Errors
    /// Propagates clustering errors (e.g. candidates larger than the sample).
    pub fn auto_k(records: &[&QueryRecord], candidates: &[usize], seed: u64) -> MlResult<usize> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("PlanKMeansTemplates::auto_k"));
        }
        let rows = subsample_rows(records.iter().map(|r| r.features.clone()).collect());
        let x = Matrix::from_rows(&rows)?;
        let mut scaler = StandardScaler::new();
        let xs = scaler.fit_transform(&x)?;
        let curve = wmp_mlkit::kmeans::elbow_curve(&xs, candidates, seed)?;
        wmp_mlkit::kmeans::pick_elbow(&curve)
    }

    /// Deserializes a learner written by [`TemplateLearner::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Self> {
        use wmp_mlkit::codec as c;
        let k = c::read_usize(r)?;
        let seed = c::read_u64(r)?;
        let scaler = StandardScaler::read_params(r)?;
        let kmeans = if c::read_bool(r)? { Some(KMeans::read_params(r)?) } else { None };
        Ok(PlanKMeansTemplates { k, seed, scaler, kmeans })
    }
}

impl TemplateLearner for PlanKMeansTemplates {
    fn fit(&mut self, records: &[&QueryRecord], _catalog: &Catalog) -> MlResult<()> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("PlanKMeansTemplates::fit"));
        }
        let rows = subsample_rows(records.iter().map(|r| r.features.clone()).collect());
        let x = Matrix::from_rows(&rows)?;
        let xs = self.scaler.fit_transform(&x)?;
        let k = self.k.min(xs.rows());
        let mut km = KMeans::new(KMeansConfig {
            k,
            seed: self.seed,
            n_init: 4,
            max_iter: 100,
            ..KMeansConfig::default()
        });
        km.fit(&xs)?;
        self.kmeans = Some(km);
        Ok(())
    }

    fn assign(&self, record: &QueryRecord) -> MlResult<usize> {
        let km = self.kmeans.as_ref().ok_or(MlError::NotFitted("PlanKMeansTemplates"))?;
        let mut row = record.features.clone();
        self.scaler.transform_row(&mut row)?;
        km.predict_row(&row)
    }

    fn n_templates(&self) -> usize {
        self.kmeans.as_ref().map_or(self.k, KMeans::k)
    }

    fn name(&self) -> &'static str {
        "query_plan"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use wmp_mlkit::codec as c;
        c::write_usize(w, self.k)?;
        c::write_u64(w, self.seed)?;
        self.scaler.write_params(w)?;
        c::write_bool(w, self.kmeans.is_some())?;
        if let Some(km) = &self.kmeans {
            km.write_params(w)?;
        }
        Ok(())
    }
}

/// Expert-rule templates: a query's template is determined by structural
/// attributes a DBA would write rules over (table count, aggregation shape,
/// sort/distinct flags, driving table). Unseen combinations at inference time
/// fall back to template 0, mirroring a rule set's catch-all bucket.
#[derive(Debug, Clone, Default)]
pub struct RuleBasedTemplates {
    map: HashMap<(usize, bool, bool, bool, String), usize>,
    fitted: bool,
}

impl RuleBasedTemplates {
    /// Creates an unfitted rule set.
    pub fn new() -> Self {
        Self::default()
    }

    fn key_of(record: &QueryRecord) -> (usize, bool, bool, bool, String) {
        let s = &record.spec;
        (
            s.tables.len().min(6),
            !s.group_by.is_empty(),
            !s.order_by.is_empty() || s.distinct,
            !s.aggregates.is_empty(),
            s.tables.first().map(|t| t.table.clone()).unwrap_or_default(),
        )
    }

    /// Deserializes a learner written by [`TemplateLearner::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Self> {
        use wmp_mlkit::codec as c;
        let fitted = c::read_bool(r)?;
        let n = c::read_len(r, "rule-based templates")?;
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = (
                c::read_usize(r)?,
                c::read_bool(r)?,
                c::read_bool(r)?,
                c::read_bool(r)?,
                c::read_string(r)?,
            );
            let template = c::read_usize(r)?;
            // assign() must stay within 0..n_templates() or the histogram
            // builder panics — reject out-of-range ids at load time.
            if template >= n.max(1) {
                return Err(c::codec_err(format!(
                    "rule-based template id {template} out of range for {n} rules"
                )));
            }
            map.insert(key, template);
        }
        Ok(RuleBasedTemplates { map, fitted })
    }
}

impl TemplateLearner for RuleBasedTemplates {
    fn fit(&mut self, records: &[&QueryRecord], _catalog: &Catalog) -> MlResult<()> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("RuleBasedTemplates::fit"));
        }
        self.map.clear();
        // Sort keys for a deterministic template numbering.
        let mut keys: Vec<_> = records.iter().map(|r| Self::key_of(r)).collect();
        keys.sort();
        keys.dedup();
        for (i, k) in keys.into_iter().enumerate() {
            self.map.insert(k, i);
        }
        self.fitted = true;
        Ok(())
    }

    fn assign(&self, record: &QueryRecord) -> MlResult<usize> {
        if !self.fitted {
            return Err(MlError::NotFitted("RuleBasedTemplates"));
        }
        Ok(self.map.get(&Self::key_of(record)).copied().unwrap_or(0))
    }

    fn n_templates(&self) -> usize {
        self.map.len().max(1)
    }

    fn name(&self) -> &'static str {
        "rule_based"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use wmp_mlkit::codec as c;
        c::write_bool(w, self.fitted)?;
        // Sort entries for a deterministic byte stream.
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort();
        c::write_usize(w, entries.len())?;
        for ((tables, grouped, ordered, aggregated, driving), template) in entries {
            c::write_usize(w, *tables)?;
            c::write_bool(w, *grouped)?;
            c::write_bool(w, *ordered)?;
            c::write_bool(w, *aggregated)?;
            c::write_string(w, driving)?;
            c::write_usize(w, *template)?;
        }
        Ok(())
    }
}

/// Which text featurization a [`TextTemplates`] learner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextMode {
    /// All frequent tokens.
    BagOfWords,
    /// Schema identifiers + SQL keywords only.
    TextMining,
    /// Mean-pooled word embeddings.
    Embedding,
}

impl TextMode {
    fn learner_name(self) -> &'static str {
        match self {
            TextMode::BagOfWords => "bag_of_words",
            TextMode::TextMining => "text_mining",
            TextMode::Embedding => "word_embeddings",
        }
    }

    fn code(self) -> u8 {
        match self {
            TextMode::BagOfWords => 0,
            TextMode::TextMining => 1,
            TextMode::Embedding => 2,
        }
    }

    fn from_code(code: u8) -> MlResult<Self> {
        match code {
            0 => Ok(TextMode::BagOfWords),
            1 => Ok(TextMode::TextMining),
            2 => Ok(TextMode::Embedding),
            other => Err(wmp_mlkit::codec::codec_err(format!("invalid text-mode tag {other}"))),
        }
    }
}

enum TextFeaturizer {
    Counts(Vectorizer),
    Embedding(WordEmbedder),
}

/// Text-based templates: featurize SQL text, then k-means.
pub struct TextTemplates {
    k: usize,
    seed: u64,
    mode: TextMode,
    featurizer: Option<TextFeaturizer>,
    kmeans: Option<KMeans>,
}

impl TextTemplates {
    /// Creates an unfitted learner.
    pub fn new(mode: TextMode, k: usize, seed: u64) -> Self {
        TextTemplates { k, seed, mode, featurizer: None, kmeans: None }
    }

    fn featurize(&self, sql: &str) -> MlResult<Vec<f64>> {
        match self.featurizer.as_ref().ok_or(MlError::NotFitted("TextTemplates"))? {
            TextFeaturizer::Counts(v) => Ok(v.vectorize(sql)),
            TextFeaturizer::Embedding(e) => Ok(e.embed(sql)),
        }
    }

    /// Deserializes a learner written by [`TemplateLearner::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Self> {
        use wmp_mlkit::codec as c;
        let mode = TextMode::from_code(c::read_u8(r)?)?;
        let k = c::read_usize(r)?;
        let seed = c::read_u64(r)?;
        let featurizer = match c::read_u8(r)? {
            0 => None,
            1 => {
                let n = c::read_len(r, "vectorizer vocabulary")?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(c::read_string(r)?);
                }
                Some(TextFeaturizer::Counts(Vectorizer::from_vocabulary(names)))
            }
            2 => {
                let n = c::read_len(r, "embedder vocabulary")?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(c::read_string(r)?);
                }
                let vectors = c::read_matrix(r)?;
                if vectors.rows() != names.len() {
                    return Err(c::codec_err(format!(
                        "embedder has {} tokens but {} vector rows",
                        names.len(),
                        vectors.rows()
                    )));
                }
                Some(TextFeaturizer::Embedding(WordEmbedder::from_parts(names, vectors)))
            }
            other => return Err(c::codec_err(format!("invalid text featurizer tag {other}"))),
        };
        let kmeans = if c::read_bool(r)? { Some(KMeans::read_params(r)?) } else { None };
        Ok(TextTemplates { k, seed, mode, featurizer, kmeans })
    }
}

impl TemplateLearner for TextTemplates {
    fn fit(&mut self, records: &[&QueryRecord], catalog: &Catalog) -> MlResult<()> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("TextTemplates::fit"));
        }
        let sample: Vec<&QueryRecord> = if records.len() > MAX_FIT_SAMPLES {
            let stride = records.len().div_ceil(MAX_FIT_SAMPLES);
            records.iter().step_by(stride).copied().collect()
        } else {
            records.to_vec()
        };
        let corpus: Vec<String> = sample.iter().map(|r| r.sql()).collect();
        let featurizer = match self.mode {
            TextMode::BagOfWords => TextFeaturizer::Counts(Vectorizer::bag_of_words(&corpus, 300)),
            TextMode::TextMining => {
                TextFeaturizer::Counts(Vectorizer::text_mining(&catalog.identifier_vocabulary()))
            }
            TextMode::Embedding => TextFeaturizer::Embedding(WordEmbedder::train(
                &corpus,
                &EmbedConfig { seed: self.seed, ..EmbedConfig::default() },
            )),
        };
        self.featurizer = Some(featurizer);
        let rows: Vec<Vec<f64>> =
            corpus.iter().map(|s| self.featurize(s)).collect::<MlResult<_>>()?;
        let x = Matrix::from_rows(&rows)?;
        let k = self.k.min(x.rows());
        let mut km = KMeans::new(KMeansConfig {
            k,
            seed: self.seed,
            n_init: 2,
            max_iter: 50,
            ..KMeansConfig::default()
        });
        km.fit(&x)?;
        self.kmeans = Some(km);
        Ok(())
    }

    fn assign(&self, record: &QueryRecord) -> MlResult<usize> {
        let km = self.kmeans.as_ref().ok_or(MlError::NotFitted("TextTemplates"))?;
        km.predict_row(&self.featurize(&record.sql())?)
    }

    fn n_templates(&self) -> usize {
        self.kmeans.as_ref().map_or(self.k, KMeans::k)
    }

    fn name(&self) -> &'static str {
        self.mode.learner_name()
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use wmp_mlkit::codec as c;
        c::write_u8(w, self.mode.code())?;
        c::write_usize(w, self.k)?;
        c::write_u64(w, self.seed)?;
        match &self.featurizer {
            None => c::write_u8(w, 0)?,
            Some(TextFeaturizer::Counts(v)) => {
                c::write_u8(w, 1)?;
                c::write_usize(w, v.vocabulary().len())?;
                for name in v.vocabulary() {
                    c::write_string(w, name)?;
                }
            }
            Some(TextFeaturizer::Embedding(e)) => {
                c::write_u8(w, 2)?;
                let names = e.vocabulary();
                c::write_usize(w, names.len())?;
                for name in &names {
                    c::write_string(w, name)?;
                }
                c::write_matrix(w, e.vectors())?;
            }
        }
        c::write_bool(w, self.kmeans.is_some())?;
        if let Some(km) = &self.kmeans {
            km.write_params(w)?;
        }
        Ok(())
    }
}

/// DBSCAN-based templates (related-work comparison, §V). Density clusters
/// become templates; new queries adopt the label of their nearest fitted
/// point, and noise points form one extra catch-all template.
pub struct DbscanTemplates {
    config: DbscanConfig,
    scaler: StandardScaler,
    points: Matrix,
    labels: Vec<usize>,
    n_templates: usize,
    fitted: bool,
}

impl DbscanTemplates {
    /// Creates an unfitted learner.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        DbscanTemplates {
            config: DbscanConfig { eps, min_pts },
            scaler: StandardScaler::new(),
            points: Matrix::zeros(0, 0),
            labels: Vec::new(),
            n_templates: 0,
            fitted: false,
        }
    }

    /// Deserializes a learner written by [`TemplateLearner::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or mismatched
    /// point/label counts.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Self> {
        use wmp_mlkit::codec as c;
        let config = DbscanConfig { eps: c::read_f64(r)?, min_pts: c::read_usize(r)? };
        let scaler = StandardScaler::read_params(r)?;
        let points = c::read_matrix(r)?;
        let labels = c::read_usize_seq(r)?;
        let n_templates = c::read_usize(r)?;
        let fitted = c::read_bool(r)?;
        if labels.len() != points.rows() {
            return Err(c::codec_err(format!(
                "dbscan has {} points but {} labels",
                points.rows(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_templates.max(1)) {
            return Err(c::codec_err(format!("dbscan label {bad} out of range 0..{n_templates}")));
        }
        Ok(DbscanTemplates { config, scaler, points, labels, n_templates, fitted })
    }
}

impl TemplateLearner for DbscanTemplates {
    fn fit(&mut self, records: &[&QueryRecord], _catalog: &Catalog) -> MlResult<()> {
        if records.is_empty() {
            return Err(MlError::EmptyInput("DbscanTemplates::fit"));
        }
        // DBSCAN is O(n²); cap the fitted sample harder than k-means.
        let rows = {
            let mut rows: Vec<Vec<f64>> = records.iter().map(|r| r.features.clone()).collect();
            if rows.len() > 3_000 {
                let stride = rows.len().div_ceil(3_000);
                rows = rows.into_iter().step_by(stride).collect();
            }
            rows
        };
        let x = Matrix::from_rows(&rows)?;
        let xs = self.scaler.fit_transform(&x)?;
        let raw = dbscan(&xs, &self.config)?;
        let n_clusters = wmp_mlkit::dbscan::n_clusters(&raw);
        // Noise points map to the extra template `n_clusters`.
        self.labels =
            raw.iter().map(|&l| if l == NOISE { n_clusters } else { l as usize }).collect();
        self.n_templates = n_clusters + 1;
        self.points = xs;
        self.fitted = true;
        Ok(())
    }

    fn assign(&self, record: &QueryRecord) -> MlResult<usize> {
        if !self.fitted {
            return Err(MlError::NotFitted("DbscanTemplates"));
        }
        let mut row = record.features.clone();
        self.scaler.transform_row(&mut row)?;
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in self.points.row_iter().enumerate() {
            let d = sq_dist(p, &row);
            if d < best.1 {
                best = (i, d);
            }
        }
        Ok(self.labels[best.0])
    }

    fn n_templates(&self) -> usize {
        self.n_templates.max(1)
    }

    fn name(&self) -> &'static str {
        "dbscan"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use wmp_mlkit::codec as c;
        c::write_f64(w, self.config.eps)?;
        c::write_usize(w, self.config.min_pts)?;
        self.scaler.write_params(w)?;
        c::write_matrix(w, &self.points)?;
        c::write_usize_seq(w, &self.labels)?;
        c::write_usize(w, self.n_templates)?;
        c::write_bool(w, self.fitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> wmp_workloads::QueryLog {
        wmp_workloads::tpcc::generate(300, 4).unwrap()
    }

    #[test]
    fn plan_kmeans_learns_and_assigns_in_range() {
        let log = sample_log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let mut t = PlanKMeansTemplates::new(8, 1);
        t.fit(&refs, &log.catalog).unwrap();
        assert_eq!(t.n_templates(), 8);
        for r in &refs {
            assert!(t.assign(r).unwrap() < 8);
        }
    }

    #[test]
    fn plan_kmeans_groups_same_generator_template_together() {
        let log = sample_log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let mut t = PlanKMeansTemplates::new(12, 1);
        t.fit(&refs, &log.catalog).unwrap();
        // Queries from the same generator template should mostly share a
        // learned template (their plans are near-identical).
        let mut by_hint: HashMap<usize, Vec<usize>> = HashMap::new();
        for r in &refs {
            by_hint.entry(r.template_hint).or_default().push(t.assign(r).unwrap());
        }
        let mut majority_share = 0.0;
        let mut groups = 0.0;
        for (_, assigns) in by_hint {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for a in &assigns {
                *counts.entry(*a).or_insert(0) += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            majority_share += max as f64 / assigns.len() as f64;
            groups += 1.0;
        }
        assert!(majority_share / groups > 0.7, "share = {}", majority_share / groups);
    }

    #[test]
    fn rule_based_is_consistent_and_covers_unseen() {
        let log = sample_log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let mut t = RuleBasedTemplates::new();
        t.fit(&refs[..200], &log.catalog).unwrap();
        assert!(t.n_templates() >= 2);
        for r in &refs {
            assert!(t.assign(r).unwrap() < t.n_templates());
        }
        // Same structural key → same template.
        let a = t.assign(refs[0]).unwrap();
        let b = t.assign(refs[0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn text_templates_all_modes_fit_and_assign() {
        let log = sample_log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        for mode in [TextMode::BagOfWords, TextMode::TextMining, TextMode::Embedding] {
            let mut t = TextTemplates::new(mode, 6, 3);
            t.fit(&refs[..150], &log.catalog).unwrap();
            assert_eq!(t.n_templates(), 6);
            for r in refs.iter().take(30) {
                assert!(t.assign(r).unwrap() < 6, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn dbscan_templates_fit_and_assign() {
        let log = sample_log();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let mut t = DbscanTemplates::new(1.0, 4);
        t.fit(&refs, &log.catalog).unwrap();
        assert!(t.n_templates() >= 2, "found {} templates", t.n_templates());
        for r in refs.iter().take(50) {
            assert!(t.assign(r).unwrap() < t.n_templates());
        }
    }

    #[test]
    fn learners_error_before_fit_and_on_empty() {
        let log = sample_log();
        let r = &log.records[0];
        assert!(PlanKMeansTemplates::new(4, 0).assign(r).is_err());
        assert!(RuleBasedTemplates::new().assign(r).is_err());
        assert!(TextTemplates::new(TextMode::BagOfWords, 4, 0).assign(r).is_err());
        assert!(DbscanTemplates::new(0.5, 3).assign(r).is_err());
        let empty: Vec<&QueryRecord> = Vec::new();
        assert!(PlanKMeansTemplates::new(4, 0).fit(&empty, &log.catalog).is_err());
        assert!(RuleBasedTemplates::new().fit(&empty, &log.catalog).is_err());
    }

    #[test]
    fn learner_names_are_distinct() {
        let names = [
            PlanKMeansTemplates::new(2, 0).name(),
            RuleBasedTemplates::new().name(),
            TextTemplates::new(TextMode::BagOfWords, 2, 0).name(),
            TextTemplates::new(TextMode::TextMining, 2, 0).name(),
            TextTemplates::new(TextMode::Embedding, 2, 0).name(),
            DbscanTemplates::new(0.5, 3).name(),
        ];
        let set: std::collections::HashSet<&str> = names.into_iter().collect();
        assert_eq!(set.len(), 6);
    }
}
