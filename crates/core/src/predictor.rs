//! The unified serving surface: every predictor family — [`LearnedWmp`], the
//! [`SingleWmp`] ML baselines, the [`SingleWmpDbms`] heuristic, and the
//! self-retraining [`OnlineWmp`] — answers workload-memory questions through
//! one [`WorkloadPredictor`] trait.
//!
//! This is the interface a serving daemon, the evaluation harness, and the
//! figure binaries program against: hold a `Box<dyn WorkloadPredictor>` (or a
//! `&dyn WorkloadPredictor`), call [`WorkloadPredictor::predict_workload`]
//! per arriving batch, and report [`WorkloadPredictor::name`] /
//! [`WorkloadPredictor::footprint_bytes`] in dashboards — without
//! special-casing the model family at any call site.

use wmp_mlkit::MlResult;
use wmp_plan::ResourceVector;
use wmp_workloads::QueryRecord;

use crate::learned::LearnedWmp;
use crate::online::OnlineWmp;
use crate::single::{SingleWmp, SingleWmpDbms};
use crate::workload::Workload;

/// Resolves a workload's `query_indices` against the record slice, rejecting
/// out-of-range indices with a typed error instead of panicking — a serving
/// daemon must survive a malformed workload description.
///
/// # Errors
/// Returns [`wmp_mlkit::MlError::DimensionMismatch`] naming the bad index.
pub(crate) fn gather_queries<'r>(
    records: &[&'r QueryRecord],
    workload: &Workload,
) -> MlResult<Vec<&'r QueryRecord>> {
    workload
        .query_indices
        .iter()
        .map(|&i| {
            records.get(i).copied().ok_or_else(|| {
                wmp_mlkit::error::dim_mismatch(
                    format!("query index < {}", records.len()),
                    format!("index {i}"),
                )
            })
        })
        .collect()
}

/// A trained (or heuristic) model that predicts the collective working-memory
/// demand of a workload — the common contract over the paper's three
/// predictor families (§IV: LearnedWMP, SingleWMP, SingleWMP-DBMS).
///
/// The bound is `Send + Sync`: a trained predictor is immutable at serving
/// time, so one instance can be shared across concurrent request threads —
/// typically behind a [`crate::handle::PredictorHandle`], which adds atomic
/// hot-swap of the underlying model on top of the shared reads.
pub trait WorkloadPredictor: Send + Sync {
    /// Stable display name, e.g. `"LearnedWMP-XGB"` or `"SingleWMP-DBMS"`.
    fn name(&self) -> String;

    /// Predicts the full resource demand of one workload — memory (MB), CPU
    /// time (ms), and IO (pages). This is the primary prediction surface;
    /// memory-only call sites use [`WorkloadPredictor::predict_workload`].
    ///
    /// Families without a model for an axis (and models trained before
    /// multi-resource labels) report zero on that axis.
    ///
    /// # Errors
    /// Propagates assignment/prediction errors; models that must be trained
    /// first return [`wmp_mlkit::MlError::NotFitted`].
    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector>;

    /// Predicts the memory demand (MB) of one workload — the memory
    /// projection of [`WorkloadPredictor::predict_resources`].
    /// Implementations with a cheaper scalar path may override it.
    ///
    /// # Errors
    /// Same conditions as [`WorkloadPredictor::predict_resources`].
    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        Ok(self.predict_resources(queries)?.memory_mb)
    }

    /// Predicts every workload of a batched test set (indices into
    /// `records`). Implementations may override this with a batched fast
    /// path; the default calls [`WorkloadPredictor::predict_workload`] per
    /// workload.
    ///
    /// # Errors
    /// Propagates per-workload errors, and rejects workloads whose
    /// `query_indices` fall outside `records` with a
    /// [`wmp_mlkit::MlError::DimensionMismatch`] instead of panicking.
    fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        workloads.iter().map(|w| self.predict_workload(&gather_queries(records, w)?)).collect()
    }

    /// Predicts every workload's full resource demand. The default resolves
    /// and validates indices per workload and calls
    /// [`WorkloadPredictor::predict_resources`]; implementations with a
    /// batched fast path may override it.
    ///
    /// # Errors
    /// Same conditions as [`WorkloadPredictor::predict_workloads`].
    fn predict_resources_many(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<ResourceVector>> {
        workloads.iter().map(|w| self.predict_resources(&gather_queries(records, w)?)).collect()
    }

    /// Size of the learned parameters in bytes (0 for pure heuristics) — the
    /// quantity behind the paper's Fig. 8.
    fn footprint_bytes(&self) -> usize;

    /// Maps one query to the model's template id, when the model has a
    /// notion of templates (`None` otherwise — the default, used by the
    /// SingleWMP families). Observability hooks use this to track the live
    /// template distribution for drift detection without downcasting.
    ///
    /// # Errors
    /// Propagates assignment errors from template-based models.
    fn assign_template(&self, _query: &QueryRecord) -> MlResult<Option<usize>> {
        Ok(None)
    }
}

impl WorkloadPredictor for LearnedWmp {
    fn name(&self) -> String {
        format!("LearnedWMP-{}", self.config().model.label())
    }

    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        LearnedWmp::predict_resources(self, queries)
    }

    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        LearnedWmp::predict_workload(self, queries)
    }

    fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        // The batched path assigns each distinct record to its template once
        // and reuses the assignment across overlapping workloads.
        LearnedWmp::predict_workloads(self, records, workloads)
    }

    fn predict_resources_many(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<ResourceVector>> {
        LearnedWmp::predict_resources_many(self, records, workloads)
    }

    fn footprint_bytes(&self) -> usize {
        LearnedWmp::footprint_bytes(self)
    }

    fn assign_template(&self, query: &QueryRecord) -> MlResult<Option<usize>> {
        LearnedWmp::assign_template(self, query).map(Some)
    }
}

impl WorkloadPredictor for SingleWmp {
    fn name(&self) -> String {
        format!("SingleWMP-{}", self.model().label())
    }

    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        SingleWmp::predict_resources(self, queries)
    }

    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        SingleWmp::predict_workload(self, queries)
    }

    // `predict_workloads` uses the validating trait default: summing per
    // query has no batched fast path to exploit.

    fn footprint_bytes(&self) -> usize {
        SingleWmp::footprint_bytes(self)
    }
}

impl WorkloadPredictor for SingleWmpDbms {
    fn name(&self) -> String {
        "SingleWMP-DBMS".to_string()
    }

    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        Ok(SingleWmpDbms::predict_resources(self, queries))
    }

    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        Ok(SingleWmpDbms::predict_workload(self, queries))
    }

    // `predict_workloads` uses the validating trait default.

    fn footprint_bytes(&self) -> usize {
        0
    }
}

impl WorkloadPredictor for OnlineWmp {
    fn name(&self) -> String {
        match self.model() {
            Some(m) => format!("Online{}", WorkloadPredictor::name(m)),
            None => "OnlineWMP-untrained".to_string(),
        }
    }

    fn predict_resources(&self, queries: &[&QueryRecord]) -> MlResult<ResourceVector> {
        OnlineWmp::predict_resources(self, queries)
    }

    fn predict_workload(&self, queries: &[&QueryRecord]) -> MlResult<f64> {
        OnlineWmp::predict_workload(self, queries)
    }

    fn predict_workloads(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<f64>> {
        match self.model() {
            Some(m) => LearnedWmp::predict_workloads(m, records, workloads),
            None => {
                Err(wmp_mlkit::MlError::NotFitted("OnlineWmp (no retraining has happened yet)"))
            }
        }
    }

    fn predict_resources_many(
        &self,
        records: &[&QueryRecord],
        workloads: &[Workload],
    ) -> MlResult<Vec<ResourceVector>> {
        match self.model() {
            Some(m) => LearnedWmp::predict_resources_many(m, records, workloads),
            None => {
                Err(wmp_mlkit::MlError::NotFitted("OnlineWmp (no retraining has happened yet)"))
            }
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.model().map_or(0, LearnedWmp::footprint_bytes)
    }

    fn assign_template(&self, query: &QueryRecord) -> MlResult<Option<usize>> {
        match self.model() {
            Some(m) => LearnedWmp::assign_template(m, query).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemplateSpec;
    use crate::model::ModelKind;
    use crate::workload::{batch_workloads, LabelMode};

    #[test]
    fn all_families_serve_through_one_trait_object() {
        let log = wmp_workloads::tpcc::generate(400, 5).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let learned = LearnedWmp::builder()
            .model(ModelKind::Ridge)
            .templates(TemplateSpec::PlanKMeans { k: 8, seed: 1 })
            .fit(&log)
            .unwrap();
        let single = SingleWmp::train(ModelKind::Ridge, &refs).unwrap();
        let predictors: Vec<Box<dyn WorkloadPredictor>> =
            vec![Box::new(learned), Box::new(single), Box::new(SingleWmpDbms)];
        let ws = batch_workloads(&refs, 10, 3, LabelMode::Sum);
        for p in &predictors {
            let one = p.predict_workload(&refs[..10]).unwrap();
            assert!(one > 0.0, "{}", p.name());
            let many = p.predict_workloads(&refs, &ws).unwrap();
            assert_eq!(many.len(), ws.len(), "{}", p.name());
            assert!(many.iter().all(|v| v.is_finite()), "{}", p.name());
            // The full-resource surface serves every family too, and its
            // memory axis agrees with the scalar path.
            let vec_one = p.predict_resources(&refs[..10]).unwrap();
            assert!(vec_one.is_finite(), "{}: {vec_one}", p.name());
            assert_eq!(vec_one.memory_mb.to_bits(), one.to_bits(), "{}", p.name());
            assert!(vec_one.cpu_ms > 0.0, "{}: cpu axis must be modeled", p.name());
            let vec_many = p.predict_resources_many(&refs, &ws).unwrap();
            assert_eq!(vec_many.len(), ws.len(), "{}", p.name());
            for (scalar, vector) in many.iter().zip(&vec_many) {
                assert_eq!(vector.memory_mb.to_bits(), scalar.to_bits(), "{}", p.name());
            }
        }
        let names: Vec<String> = predictors.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["LearnedWMP-Ridge", "SingleWMP-Ridge", "SingleWMP-DBMS"]);
        assert_eq!(predictors[2].footprint_bytes(), 0);
        assert!(predictors[0].footprint_bytes() > 0);
    }

    #[test]
    fn batched_trait_path_matches_per_workload_path() {
        let log = wmp_workloads::tpcc::generate(300, 2).unwrap();
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let learned = LearnedWmp::builder()
            .model(ModelKind::Xgb)
            .templates(TemplateSpec::PlanKMeans { k: 6, seed: 1 })
            .fit(&log)
            .unwrap();
        let p: &dyn WorkloadPredictor = &learned;
        let ws = batch_workloads(&refs, 10, 9, LabelMode::Sum);
        let batched = p.predict_workloads(&refs, &ws).unwrap();
        for (w, b) in ws.iter().zip(&batched) {
            let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| refs[i]).collect();
            assert_eq!(p.predict_workload(&queries).unwrap().to_bits(), b.to_bits());
        }
    }
}
