//! Lightweight lexical analysis of one Rust source file.
//!
//! The linter does not parse Rust; it works on a *masked* view of each file
//! in which comment bodies and string/char-literal bodies are blanked out
//! (replaced by spaces, newlines preserved), so byte offsets in the masked
//! text line up exactly with the original. On top of the mask it derives:
//!
//! - the comment list (for `// ordering:` justifications and
//!   `// lint: allow(...)` suppressions),
//! - the string-literal list (for metric-name extraction),
//! - a per-line *test mask* covering `#[cfg(test)]` / `#[test]` items, so
//!   hot-path rules never fire inside test code.
//!
//! Masking handles nested block comments, escape sequences, raw strings
//! (`r"…"`, `r#"…"#`), byte strings, char literals, and lifetimes (which
//! start with `'` but are not literals).

use std::path::{Path, PathBuf};

/// One comment (line or block) with its location.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// Byte offset of the comment start in the file.
    pub offset: usize,
}

/// One string literal with its location.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Raw literal body (escape sequences left as written).
    pub value: String,
    /// Byte offset of the literal's first byte (prefix or opening quote).
    pub offset: usize,
}

/// A parsed `// lint: allow(<rule>, <reason>)` suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule identifier being suppressed.
    pub rule: String,
    /// The 1-based line whose diagnostics are suppressed.
    pub line: usize,
}

/// A lexically analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (used in diagnostics).
    pub rel: String,
    /// Original file contents.
    pub text: String,
    /// Contents with comment and literal bodies blanked (same length).
    pub masked: String,
    /// Byte range `[start, end)` of each line (newline excluded).
    line_spans: Vec<(usize, usize)>,
    /// All comments in order of appearance.
    pub comments: Vec<Comment>,
    /// All string literals in order of appearance.
    pub strings: Vec<StrLit>,
    /// `true` for each 1-based line inside a `#[cfg(test)]`/`#[test]` item.
    test_lines: Vec<bool>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// `(line, col, message)` for malformed `lint:` directives.
    pub malformed_directives: Vec<(usize, usize, String)>,
}

impl SourceFile {
    /// Reads and analyzes `path`; `rel` is the workspace-relative name used
    /// in diagnostics.
    pub fn load(path: &Path, rel: String) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(path.to_path_buf(), rel, text))
    }

    /// Analyzes in-memory contents (used by fixture tests).
    pub fn parse(path: PathBuf, rel: String, text: String) -> SourceFile {
        let (masked, comments, strings) = mask(&text);
        let line_spans = line_spans(&text);
        let test_lines = test_line_mask(&masked, &line_spans);
        let mut file = SourceFile {
            path,
            rel,
            text,
            masked,
            line_spans,
            comments,
            strings,
            test_lines,
            suppressions: Vec::new(),
            malformed_directives: Vec::new(),
        };
        file.collect_directives();
        file
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_spans.len()
    }

    /// Converts a byte offset to a 1-based `(line, col)` pair.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        match self.line_spans.binary_search_by(|&(start, _)| start.cmp(&offset)) {
            Ok(i) => (i + 1, 1),
            Err(0) => (1, 1),
            Err(i) => {
                let (start, _) = self.line_spans[i - 1];
                (i, offset - start + 1)
            }
        }
    }

    /// The masked text of a 1-based line (empty for out-of-range lines).
    pub fn masked_line(&self, line: usize) -> &str {
        match self.line_spans.get(line.wrapping_sub(1)) {
            Some(&(start, end)) => &self.masked[start..end],
            None => "",
        }
    }

    /// True when the 1-based line lies inside a test item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True when a diagnostic of `rule` at `line` is suppressed by an
    /// inline `// lint: allow(rule, reason)` directive.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| s.rule == rule && s.line == line)
    }

    /// All comments whose start offset falls on the 1-based line.
    pub fn comments_on_line(&self, line: usize) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| self.line_col(c.offset).0 == line)
    }

    /// True when the line consists only of whitespace and comments.
    fn is_pure_comment_line(&self, line: usize) -> bool {
        let has_comment = self.comments_on_line(line).next().is_some();
        has_comment && self.masked_line(line).trim().is_empty()
    }

    /// True when `Ordering::…` at `line` carries an `// ordering:`
    /// justification: on the same line, or in the contiguous run of
    /// pure-comment lines immediately above the statement.
    pub fn has_ordering_justification(&self, line: usize) -> bool {
        let marker = |c: &Comment| c.text.contains("ordering:");
        if self.comments_on_line(line).any(marker) {
            return true;
        }
        let mut cursor = line;
        while cursor > 1 && self.is_pure_comment_line(cursor - 1) {
            cursor -= 1;
            if self.comments_on_line(cursor).any(marker) {
                return true;
            }
        }
        false
    }

    /// Parses `lint: allow(rule, reason)` directives out of the comment
    /// list. A directive on a pure-comment line applies to the next
    /// non-comment line; otherwise it applies to its own line.
    fn collect_directives(&mut self) {
        let comments = self.comments.clone();
        for comment in &comments {
            // Only plain `//` comments whose body *starts* with `lint:` are
            // directives; doc comments merely *talking about* the syntax
            // (`/// … lint: allow(...)`) must not parse.
            let Some(body) = comment.text.strip_prefix("//") else { continue };
            if body.starts_with('/') || body.starts_with('!') {
                continue;
            }
            let body = body.trim_start();
            let Some(rest) = body.strip_prefix("lint:") else { continue };
            let (line, col) = self.line_col(comment.offset);
            let rest = rest.trim_start();
            let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.find(')').map(|e| &r[..e]))
            else {
                self.malformed_directives.push((
                    line,
                    col,
                    "malformed lint directive: expected `lint: allow(<rule>, <reason>)`"
                        .to_string(),
                ));
                continue;
            };
            let (rule, reason) = match args.split_once(',') {
                Some((rule, reason)) => (rule.trim(), reason.trim()),
                None => (args.trim(), ""),
            };
            if rule.is_empty() || reason.is_empty() {
                self.malformed_directives.push((
                    line,
                    col,
                    format!(
                        "suppression of `{}` needs a reason: `lint: allow(<rule>, <reason>)`",
                        if rule.is_empty() { "<rule>" } else { rule }
                    ),
                ));
                continue;
            }
            let target = if self.is_pure_comment_line(line) {
                let mut cursor = line + 1;
                while cursor <= self.line_count() && self.is_pure_comment_line(cursor) {
                    cursor += 1;
                }
                cursor
            } else {
                line
            };
            self.suppressions.push(Suppression { rule: rule.to_string(), line: target });
        }
    }

    /// Iterates identifiers in the masked text as `(offset, ident)`.
    pub fn idents(&self) -> IdentIter<'_> {
        IdentIter { bytes: self.masked.as_bytes(), pos: 0 }
    }

    /// The next non-whitespace masked byte at or after `offset`.
    pub fn next_code_byte(&self, offset: usize) -> Option<(usize, u8)> {
        self.masked.as_bytes()[offset..]
            .iter()
            .enumerate()
            .find(|(_, b)| !b.is_ascii_whitespace())
            .map(|(i, &b)| (offset + i, b))
    }

    /// The previous non-whitespace masked byte strictly before `offset`.
    pub fn prev_code_byte(&self, offset: usize) -> Option<(usize, u8)> {
        self.masked.as_bytes()[..offset]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, b)| !b.is_ascii_whitespace())
            .map(|(i, &b)| (i, b))
    }

    /// The string literal starting exactly at `offset`, if any.
    pub fn string_at(&self, offset: usize) -> Option<&StrLit> {
        self.strings.iter().find(|s| s.offset == offset)
    }

    /// The first string literal at or after `offset` with nothing but
    /// whitespace before it in the masked text (string bodies are blanked
    /// in the mask, so `next_code_byte` cannot land on them).
    pub fn string_after(&self, offset: usize) -> Option<&StrLit> {
        let lit = self.strings.iter().find(|s| s.offset >= offset)?;
        self.masked[offset..lit.offset].bytes().all(|b| b.is_ascii_whitespace()).then_some(lit)
    }
}

/// Iterator over `[A-Za-z_][A-Za-z0-9_]*` runs in masked text.
pub struct IdentIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for IdentIter<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let is_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
        let is_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if is_start(b) {
                let start = self.pos;
                while self.pos < self.bytes.len() && is_cont(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                let ident = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                return Some((start, ident));
            }
            if b.is_ascii_digit() {
                // Skip number literals (including suffixed ones like 1u8)
                // so `1e9` never yields a phantom `e9` identifier.
                while self.pos < self.bytes.len() && is_cont(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                continue;
            }
            self.pos += 1;
        }
        None
    }
}

fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            spans.push((start, i));
            start = i + 1;
        }
    }
    if start < text.len() {
        spans.push((start, text.len()));
    }
    if spans.is_empty() {
        spans.push((0, 0));
    }
    spans
}

/// Blanks comment and literal bodies, collecting comments and strings.
fn mask(text: &str) -> (String, Vec<Comment>, Vec<StrLit>) {
    let bytes = text.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut i = 0;

    let blank = |masked: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize| {
        for &b in &bytes[from..to] {
            masked.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment { text: text[start..i].to_string(), offset: start });
            blank(&mut masked, bytes, start, i);
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment { text: text[start..i].to_string(), offset: start });
            blank(&mut masked, bytes, start, i);
        } else if let Some((prefix_len, hashes)) = raw_string_start(bytes, i) {
            // r"…" / r#"…"# / br#"…"# — ends at `"` followed by `hashes` #s.
            let start = i;
            let body_start = i + prefix_len;
            i = body_start;
            loop {
                if i >= bytes.len() {
                    break;
                }
                if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
                {
                    i += 1 + hashes;
                    break;
                }
                i += 1;
            }
            let body_end = i.saturating_sub(1 + hashes).max(body_start);
            strings.push(StrLit { value: text[body_start..body_end].to_string(), offset: start });
            blank(&mut masked, bytes, start, i);
        } else if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            let start = i;
            let body_start = if b == b'"' { i + 1 } else { i + 2 };
            i = body_start;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            let body_end = i.saturating_sub(1).max(body_start);
            let body_end = body_end.min(bytes.len());
            strings.push(StrLit { value: text[body_start..body_end].to_string(), offset: start });
            blank(&mut masked, bytes, start, i);
        } else if b == b'\'' {
            if is_lifetime(bytes, i) {
                // Lifetime: copy the quote and the ident through unchanged.
                masked.push(b'\'');
                i += 1;
            } else {
                let start = i;
                i += 1;
                if i < bytes.len() && bytes[i] == b'\\' {
                    i += 2;
                } else {
                    // Skip one (possibly multi-byte) character.
                    i += text[i..].chars().next().map_or(1, char::len_utf8);
                }
                if i < bytes.len() && bytes[i] == b'\'' {
                    i += 1;
                }
                blank(&mut masked, bytes, start, i);
            }
        } else {
            masked.push(b);
            i += 1;
        }
    }
    let masked = String::from_utf8(masked).unwrap_or_default();
    (masked, comments, strings)
}

/// Detects `r"`, `r#…#"`, `br"`, `br#…#"` at `i`; returns
/// `(prefix_len_through_quote, n_hashes)`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    // Reject when the `r`/`b` is the tail of a longer identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// True when the `'` at `i` starts a lifetime (`'a`, `'static`) rather than
/// a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let next = match bytes.get(i + 1) {
        Some(&b) => b,
        None => return false,
    };
    if !(next.is_ascii_alphabetic() || next == b'_') {
        return false;
    }
    // `'a'` is a char literal; `'a,` / `'a>` / `'a ` is a lifetime.
    let mut j = i + 2;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

/// Marks every line belonging to a `#[cfg(test)]` or `#[test]` item.
fn test_line_mask(masked: &str, line_spans: &[(usize, usize)]) -> Vec<bool> {
    let bytes = masked.as_bytes();
    let mut mask = vec![false; line_spans.len()];
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let Some(open) = next_non_ws(bytes, i + 1) else { break };
        if bytes[open] != b'[' {
            i += 1;
            continue;
        }
        let Some(close) = matching(bytes, open, b'[', b']') else { break };
        let attr: String = masked[open + 1..close].chars().filter(|c| !c.is_whitespace()).collect();
        let is_test_attr = attr == "test" || attr.starts_with("cfg(test");
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // The attribute covers the item that follows: everything through
        // the item's closing brace (or terminating semicolon).
        let mut j = close + 1;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    end = matching(bytes, j, b'{', b'}').map_or(bytes.len(), |e| e + 1);
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        mark_lines(&mut mask, line_spans, i, end);
        i = end;
    }
    mask
}

fn next_non_ws(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len()).find(|&j| !bytes[j].is_ascii_whitespace())
}

/// Offset of the delimiter matching `open_at` (which holds `open`).
fn matching(bytes: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn mark_lines(mask: &mut [bool], line_spans: &[(usize, usize)], start: usize, end: usize) {
    for (idx, &(s, e)) in line_spans.iter().enumerate() {
        if e >= start && s < end {
            mask[idx] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("mem.rs"), "mem.rs".to_string(), text.to_string())
    }

    #[test]
    fn masking_blanks_comments_and_strings() {
        let f = parse("let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("panic"));
        assert_eq!(f.masked.len(), f.text.len());
        assert_eq!(f.comments.len(), 2);
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "unwrap()");
    }

    #[test]
    fn raw_strings_and_chars_are_masked_lifetimes_are_not() {
        let f =
            parse("let s = r#\"a \"quoted\" panic!\"#; let c = '\\''; fn f<'a>(x: &'a str) {}\n");
        assert!(!f.masked.contains("panic"));
        assert!(f.masked.contains("'a>"));
        assert_eq!(f.strings[0].value, "a \"quoted\" panic!");
    }

    #[test]
    fn test_items_are_masked_by_line() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let f = parse(text);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn suppressions_bind_to_their_target_line() {
        let text = "// lint: allow(no_hot_panic, startup only)\nlet x = a.unwrap();\nlet y = b.unwrap(); // lint: allow(no_hot_panic, infallible here)\n";
        let f = parse(text);
        assert!(f.is_suppressed("no_hot_panic", 2));
        assert!(f.is_suppressed("no_hot_panic", 3));
        assert!(!f.is_suppressed("no_hot_panic", 1));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let f = parse("let x = a.unwrap(); // lint: allow(no_hot_panic)\n");
        assert!(!f.is_suppressed("no_hot_panic", 1));
        assert_eq!(f.malformed_directives.len(), 1);
    }

    #[test]
    fn ordering_justifications_attach_same_line_or_above() {
        let text = "// ordering: relaxed — counter only\nx.fetch_add(1, Ordering::Relaxed);\ny.load(Ordering::Acquire); // ordering: pairs with the Release store\nz.load(Ordering::Relaxed);\n";
        let f = parse(text);
        assert!(f.has_ordering_justification(2));
        assert!(f.has_ordering_justification(3));
        assert!(!f.has_ordering_justification(4));
    }

    #[test]
    fn line_col_is_one_based() {
        let f = parse("abc\ndef\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(5), (2, 2));
    }
}
