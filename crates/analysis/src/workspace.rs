//! Workspace discovery: which files exist, which crate owns them, and
//! which of them are production (library) code vs. tests/benches/examples.

use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Crates whose library code is considered *hot path*: panics or unjustified
/// atomic orderings there can take down (or silently corrupt) the serving
/// and scheduling loops. Directory names under `crates/`.
pub const HOT_PATH_CRATES: &[&str] = &["core", "serve", "obs", "sched", "sim"];

/// What kind of target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under `src/` — production.
    Lib,
    /// Integration tests under `tests/`.
    Test,
    /// Criterion benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
    /// Binary targets under `src/bin/`.
    Bin,
}

/// One discovered workspace source file.
#[derive(Debug)]
pub struct WsFile {
    /// The analyzed source.
    pub source: SourceFile,
    /// Owning crate's directory name (`core`, `serve`, …; the facade crate
    /// at the repository root is `learnedwmp`).
    pub krate: String,
    /// Target class.
    pub class: FileClass,
}

impl WsFile {
    /// True when this file is hot-path production code.
    pub fn is_hot_path_lib(&self) -> bool {
        self.class == FileClass::Lib && HOT_PATH_CRATES.contains(&self.krate.as_str())
    }
}

/// The discovered workspace: Rust sources plus the non-Rust surfaces some
/// rules check (README catalog, committed bench reports).
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// All analyzed `.rs` files (vendored shims and `target/` excluded).
    pub files: Vec<WsFile>,
    /// `README.md` contents, if present.
    pub readme: Option<String>,
    /// `(file name, contents)` of committed root-level `BENCH_*.json` files.
    pub bench_reports: Vec<(String, String)>,
}

impl Workspace {
    /// Discovers and analyzes the workspace rooted at `root`.
    ///
    /// # Errors
    /// Returns an error when `root` does not look like the workspace root
    /// (no `crates/` directory) or a discovered file cannot be read.
    pub fn discover(root: &Path) -> std::io::Result<Workspace> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{} has no crates/ directory — not a workspace root", root.display()),
            ));
        }
        let mut files = Vec::new();
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let krate =
                crate_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            collect_crate(root, &crate_dir, &krate, &mut files)?;
        }
        // The facade crate lives at the repository root.
        collect_crate(root, root, "learnedwmp", &mut files)?;

        let readme = std::fs::read_to_string(root.join("README.md")).ok();
        let mut bench_reports = Vec::new();
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(root)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if let Some(name) = name {
                if name.starts_with("BENCH_") && name.ends_with(".json") && path.is_file() {
                    bench_reports.push((name, std::fs::read_to_string(&path)?));
                }
            }
        }
        files.sort_by(|a, b| a.source.rel.cmp(&b.source.rel));
        Ok(Workspace { root: root.to_path_buf(), files, readme, bench_reports })
    }

    /// Iterates library files of hot-path crates.
    pub fn hot_path_libs(&self) -> impl Iterator<Item = &WsFile> {
        self.files.iter().filter(|f| f.is_hot_path_lib())
    }

    /// Iterates library files of every crate.
    pub fn libs(&self) -> impl Iterator<Item = &WsFile> {
        self.files.iter().filter(|f| f.class == FileClass::Lib)
    }
}

fn collect_crate(
    root: &Path,
    crate_dir: &Path,
    krate: &str,
    out: &mut Vec<WsFile>,
) -> std::io::Result<()> {
    let targets: [(&str, FileClass); 4] = [
        ("src", FileClass::Lib),
        ("tests", FileClass::Test),
        ("benches", FileClass::Bench),
        ("examples", FileClass::Example),
    ];
    for (dir, class) in targets {
        let base = crate_dir.join(dir);
        if !base.is_dir() {
            continue;
        }
        let mut stack = vec![base.clone()];
        while let Some(current) = stack.pop() {
            let mut entries: Vec<PathBuf> =
                std::fs::read_dir(&current)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
            entries.sort();
            for path in entries {
                if path.is_dir() {
                    // `tests/fixtures/**` holds deliberately-bad snippets
                    // for the linter's own test suite — never lint those.
                    if class == FileClass::Test && path.file_name().is_some_and(|n| n == "fixtures")
                    {
                        continue;
                    }
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    let class = if class == FileClass::Lib && rel.contains("/src/bin/") {
                        FileClass::Bin
                    } else {
                        class
                    };
                    out.push(WsFile {
                        source: SourceFile::load(&path, rel)?,
                        krate: krate.to_string(),
                        class,
                    });
                }
            }
        }
    }
    Ok(())
}
