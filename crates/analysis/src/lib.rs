//! `wmp_analysis` — workspace-aware static analysis for the LearnedWMP
//! source tree.
//!
//! The stack hand-rolls its own lock-free concurrency (`PredictorHandle`
//! snapshot swaps, `EngineStats`, the `wmp_obs` registry) and carries a
//! growing contract surface (metric catalog, codec tag spaces, bench JSON
//! schema) that the compiler cannot check. This crate checks it: a
//! lightweight lexer ([`source`]) walks every workspace `.rs` file and a
//! set of project lints ([`rules`]) verifies the seams where production
//! incidents actually start — a panic on the serving path, an unjustified
//! atomic ordering, a dashboard metric that silently drifted out of the
//! docs.
//!
//! Run it via the `wmp-lint` binary:
//!
//! ```text
//! cargo run --release -p wmp_analysis --bin wmp-lint
//! ```
//!
//! Diagnostics are `file:line:col: [rule] message` lines plus an optional
//! machine-readable JSON report (`--json <path>`); the process exits
//! nonzero when any rule fires. Individual sites are suppressed inline
//! with `// lint: allow(<rule>, <reason>)` — the reason is mandatory and
//! the directive may sit on the flagged line or alone on the line above.
//!
//! See [`rules`] for the rule registry and [`run`] for the embedding API
//! (the integration tests run the whole linter in-process).

pub mod diag;
pub mod json;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, Report};
pub use rules::{all_rules, Rule};
pub use workspace::Workspace;

/// Runs `rules` over the workspace rooted at `root` and returns the
/// report: suppressions applied, malformed directives reported, and
/// diagnostics sorted by `(file, line, col, rule)`.
///
/// # Errors
/// Returns an error when `root` is not a workspace root or a source file
/// cannot be read.
pub fn run(root: &std::path::Path, rules: &[Box<dyn Rule>]) -> std::io::Result<Report> {
    let ws = Workspace::discover(root)?;
    Ok(run_on(&ws, rules))
}

/// [`run`] over an already-discovered workspace.
pub fn run_on(ws: &Workspace, rules: &[Box<dyn Rule>]) -> Report {
    let mut diagnostics = Vec::new();
    for rule in rules {
        let mut found = Vec::new();
        rule.check(ws, &mut found);
        found.retain(|d| {
            !ws.files
                .iter()
                .any(|f| f.source.rel == d.file && f.source.is_suppressed(d.rule, d.line))
        });
        diagnostics.append(&mut found);
    }
    // Malformed `lint:` directives are engine-level diagnostics: a typo'd
    // suppression must fail loudly, not silently stop suppressing.
    for file in &ws.files {
        for (line, col, message) in &file.source.malformed_directives {
            diagnostics.push(Diagnostic {
                rule: "lint_directive",
                file: file.source.rel.clone(),
                line: *line,
                col: *col,
                message: message.clone(),
            });
        }
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Report {
        rules: rules.iter().map(|r| r.id()).collect(),
        files_scanned: ws.files.len(),
        diagnostics,
    }
}
