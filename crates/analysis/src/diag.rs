//! Diagnostics and the machine-readable lint report.

use std::fmt;

/// One lint violation, anchored to a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `no_hot_panic`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// The outcome of one lint run over a workspace.
#[derive(Debug)]
pub struct Report {
    /// Rules that ran, in registry order.
    pub rules: Vec<&'static str>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Violations, sorted by `(file, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the machine-readable JSON report (schema version 1):
    /// `{"schema_version":1,"rules":[…],"files_scanned":N,
    ///   "violations":[{"rule","file","line","col","message"}…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,\"rules\":[");
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(rule);
            out.push('"');
        }
        out.push_str("],\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"violations\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":\"");
            out.push_str(d.rule);
            out.push_str("\",\"file\":\"");
            out.push_str(&escape(&d.file));
            out.push_str("\",\"line\":");
            out.push_str(&d.line.to_string());
            out.push_str(",\"col\":");
            out.push_str(&d.col.to_string());
            out.push_str(",\"message\":\"");
            out.push_str(&escape(&d.message));
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_clickable() {
        let d = Diagnostic {
            rule: "no_hot_panic",
            file: "crates/serve/src/engine.rs".to_string(),
            line: 10,
            col: 5,
            message: "`.unwrap()` in hot-path code".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/serve/src/engine.rs:10:5: [no_hot_panic] `.unwrap()` in hot-path code"
        );
    }

    #[test]
    fn json_escapes_messages() {
        let report = Report {
            rules: vec!["no_hot_panic"],
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                rule: "no_hot_panic",
                file: "a.rs".to_string(),
                line: 1,
                col: 1,
                message: "say \"hi\"\n".to_string(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\\\"hi\\\"\\n"));
        assert!(json.starts_with("{\"schema_version\":1"));
    }
}
