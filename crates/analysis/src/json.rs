//! A minimal, position-tracking JSON parser for validating committed
//! `BENCH_*.json` files (rule [`crate::rules::BenchSchema`]).
//!
//! Independent of `wmp_obs::JsonValue` on purpose: the linter must keep
//! working even when the workspace it lints does not compile. Every parsed
//! value remembers the 1-based `(line, col)` where it starts, so schema
//! violations point at the offending key, not just the file.

use std::collections::BTreeMap;

/// A JSON value annotated with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// 1-based line of the value's first byte.
    pub line: usize,
    /// 1-based column of the value's first byte.
    pub col: usize,
    /// The value itself.
    pub kind: Kind,
}

/// JSON value kinds. Object keys keep insertion order is not required for
/// validation, so members are stored sorted by key.
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; duplicate keys keep the last value.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.kind {
            Kind::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match &self.kind {
            Kind::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match &self.kind {
            Kind::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            Kind::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.kind {
            Kind::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Short name of the value kind (for diagnostics).
    pub fn kind_name(&self) -> &'static str {
        match &self.kind {
            Kind::Null => "null",
            Kind::Bool(_) => "bool",
            Kind::Number(_) => "number",
            Kind::String(_) => "string",
            Kind::Array(_) => "array",
            Kind::Object(_) => "object",
        }
    }
}

/// A parse failure with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

/// Parses a complete JSON document, rejecting trailing input.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, line: 1, col: 1 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing input after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(got) if got == b => {
                self.bump();
                Ok(())
            }
            Some(got) => {
                Err(self.err(format!("expected `{}`, found `{}`", b as char, got as char)))
            }
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), ParseError> {
        for expected in word.bytes() {
            match self.bump() {
                Some(b) if b == expected => {}
                _ => return Err(self.err(format!("invalid literal (expected `{word}`)"))),
            }
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let (line, col) = (self.line, self.col);
        let kind = match self.peek() {
            Some(b'{') => {
                self.bump();
                let mut members = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                } else {
                    loop {
                        self.skip_ws();
                        let key = self.string_body()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        self.skip_ws();
                        let value = self.value()?;
                        members.insert(key, value);
                        self.skip_ws();
                        match self.bump() {
                            Some(b',') => continue,
                            Some(b'}') => break,
                            _ => return Err(self.err("expected `,` or `}` in object")),
                        }
                    }
                }
                Kind::Object(members)
            }
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                } else {
                    loop {
                        self.skip_ws();
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.bump() {
                            Some(b',') => continue,
                            Some(b']') => break,
                            _ => return Err(self.err("expected `,` or `]` in array")),
                        }
                    }
                }
                Kind::Array(items)
            }
            Some(b'"') => Kind::String(self.string_body()?),
            Some(b't') => {
                self.literal("true")?;
                Kind::Bool(true)
            }
            Some(b'f') => {
                self.literal("false")?;
                Kind::Bool(false)
            }
            Some(b'n') => {
                self.literal("null")?;
                Kind::Null
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid number"))?;
                let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                Kind::Number(n)
            }
            Some(other) => return Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => return Err(self.err("unexpected end of input")),
        };
        Ok(Value { line, col, kind })
    }

    fn string_body(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let mut buf = vec![b];
                    while self.peek().is_some_and(|n| n & 0xc0 == 0x80) {
                        buf.push(self.bump().unwrap_or_default());
                    }
                    out.push_str(&String::from_utf8_lossy(&buf));
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_with_positions() {
        let doc = parse("{\n  \"a\": [1, 2.5, true],\n  \"b\": {\"c\": \"x\"}\n}").unwrap();
        assert_eq!(doc.line, 1);
        let a = doc.get("a").unwrap();
        assert_eq!(a.line, 2);
        assert_eq!(a.as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_and_malformed_input() {
        assert!(parse("{} {}").is_err());
        assert!(parse("{\"a\":}").is_err());
        let err = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn decodes_escapes() {
        let doc = parse("\"a\\n\\u0041\"").unwrap();
        assert_eq!(doc.as_str(), Some("a\nA"));
    }
}
