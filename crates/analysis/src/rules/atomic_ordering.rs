//! `atomic_ordering` — every atomic memory ordering is a justified choice.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::workspace::Workspace;

/// Audits `std::sync::atomic::Ordering` uses in hot-path library code.
///
/// Hand-rolled lock-free structures (`PredictorHandle`'s snapshot swap,
/// `EngineStats`, the `wmp_obs` registry) are exactly where a silently
/// wrong ordering produces a torn metric or a stale model version — so
/// every `Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel` site must
/// carry an `// ordering:` comment (same line, or in the comment block
/// immediately above) explaining why that ordering is sufficient.
///
/// `Ordering::SeqCst` is flagged unconditionally: in this codebase it is
/// always a default nobody reasoned about. Replace it with the weakest
/// sufficient ordering, or keep it with a
/// `// lint: allow(atomic_ordering, <why SeqCst>)` justification.
pub struct AtomicOrdering;

const JUSTIFIED: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        "atomic_ordering"
    }

    fn summary(&self) -> &'static str {
        "atomic orderings carry an `// ordering:` justification; bare SeqCst is flagged"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.hot_path_libs() {
            let src = &file.source;
            let masked = src.masked.as_bytes();
            for (offset, ident) in src.idents() {
                if ident != "Ordering" {
                    continue;
                }
                let after = offset + ident.len();
                if masked.get(after) != Some(&b':') || masked.get(after + 1) != Some(&b':') {
                    continue;
                }
                let variant_start = after + 2;
                let variant: String = src.masked[variant_start..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let (line, col) = src.line_col(offset);
                if src.is_test_line(line) {
                    continue;
                }
                if variant == "SeqCst" {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: "bare `Ordering::SeqCst` — pick the weakest sufficient \
                                  ordering, or justify SeqCst with \
                                  `lint: allow(atomic_ordering, <reason>)`"
                            .to_string(),
                    });
                } else if JUSTIFIED.contains(&variant.as_str())
                    && !src.has_ordering_justification(line)
                {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "`Ordering::{variant}` without an `// ordering:` justification \
                             (same line or the comment block above)"
                        ),
                    });
                }
            }
        }
    }
}
