//! The rule registry.
//!
//! Every lint implements [`Rule`] and is listed by [`all_rules`] — that
//! list *is* the registry: `wmp-lint --list` prints it, the CLI's
//! `--rules` filter validates against it, and the README's "Static
//! analysis" section documents it. Current rules:
//!
//! | id | checks |
//! |----|--------|
//! | [`no_hot_panic`](NoHotPanic) | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in hot-path library code |
//! | [`atomic_ordering`](AtomicOrdering) | every atomic ordering is justified; bare `SeqCst` is flagged |
//! | [`metric_catalog`](MetricCatalog) | registered `wmp_*` metrics ↔ README catalog, naming conventions |
//! | [`error_enum`](ErrorEnum) | public error enums are `#[non_exhaustive]` with exhaustive `Display` |
//! | [`codec_tags`](CodecTags) | codec tag tables are unique and append-only; version constants coherent |
//! | [`bench_schema`](BenchSchema) | committed `BENCH_*.json` files match the `wmp_bench::report` schema |
//!
//! Any diagnostic can be suppressed at its site with
//! `// lint: allow(<rule>, <reason>)` — the reason is mandatory.

mod atomic_ordering;
mod bench_schema;
mod codec_tags;
mod error_enum;
mod metric_catalog;
mod no_hot_panic;

pub use atomic_ordering::AtomicOrdering;
pub use bench_schema::BenchSchema;
pub use codec_tags::CodecTags;
pub use error_enum::ErrorEnum;
pub use metric_catalog::MetricCatalog;
pub use no_hot_panic::NoHotPanic;

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// One project lint.
pub trait Rule {
    /// Stable identifier used in diagnostics and `lint: allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `wmp-lint --list`.
    fn summary(&self) -> &'static str;
    /// Runs the rule, appending violations to `out`. Suppression filtering
    /// happens in the engine; rules report every site they find.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All registered rules, in execution order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoHotPanic),
        Box::new(AtomicOrdering),
        Box::new(MetricCatalog),
        Box::new(ErrorEnum),
        Box::new(CodecTags),
        Box::new(BenchSchema),
    ]
}
