//! `metric_catalog` — registered metrics and the README catalog agree.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::workspace::Workspace;

/// Cross-checks every `wmp_*` metric registered in library code
/// (`registry.counter("wmp_…", …)` / `.gauge` / `.histogram`) against the
/// README's metric-catalog tables, in both directions, and enforces the
/// naming convention.
///
/// - A registered metric missing from the catalog is *undocumented* — the
///   catalog is the operator's contract surface.
/// - A cataloged metric that no code registers is *drift* — a dashboard
///   built on it will silently show nothing.
/// - Names must match `wmp(_[a-z0-9]+)+`; counters must end in `_total`
///   (the Prometheus convention the renderers assume).
/// - The instrument kind in the catalog must match the registered kind.
///
/// Catalog rows are markdown table lines whose first cell is a backticked
/// `wmp_*` name and whose second cell is the kind
/// (`| \`wmp_foo_total\` | counter | … |`). Test code is exempt from the
/// registration scan.
pub struct MetricCatalog;

#[derive(Debug, Clone)]
struct Registration {
    kind: &'static str,
    file: String,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct CatalogRow {
    kind: String,
    line: usize,
}

fn name_ok(name: &str) -> bool {
    let mut parts = name.split('_');
    parts.next() == Some("wmp")
        && name.len() > 4
        && parts.all(|p| {
            !p.is_empty() && p.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

impl Rule for MetricCatalog {
    fn id(&self) -> &'static str {
        "metric_catalog"
    }

    fn summary(&self) -> &'static str {
        "registered wmp_* metrics match the README catalog and naming conventions"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let mut registered: BTreeMap<String, Registration> = BTreeMap::new();
        for file in ws.libs() {
            let src = &file.source;
            for (offset, ident) in src.idents() {
                let kind = match ident {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    "histogram" => "histogram",
                    _ => continue,
                };
                // Method-call shape: `.counter ( "wmp_…"` — the receiver dot
                // rules out the `fn counter(...)` definitions themselves.
                if src.prev_code_byte(offset).map(|(_, b)| b) != Some(b'.') {
                    continue;
                }
                let Some((paren, b'(')) = src.next_code_byte(offset + ident.len()) else {
                    continue;
                };
                let Some(lit) = src.string_after(paren + 1) else { continue };
                if !lit.value.starts_with("wmp_") {
                    continue;
                }
                let (line, col) = src.line_col(lit.offset);
                if src.is_test_line(line) {
                    continue;
                }
                let reg = Registration { kind, file: src.rel.clone(), line, col };
                if !name_ok(&lit.value) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: reg.file.clone(),
                        line,
                        col,
                        message: format!(
                            "metric `{}` violates the naming convention `wmp(_[a-z0-9]+)+`",
                            lit.value
                        ),
                    });
                }
                if kind == "counter" && !lit.value.ends_with("_total") {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: reg.file.clone(),
                        line,
                        col,
                        message: format!(
                            "counter `{}` must end in `_total` (Prometheus convention)",
                            lit.value
                        ),
                    });
                }
                registered.entry(lit.value.clone()).or_insert(reg);
            }
        }

        let mut catalog: BTreeMap<String, CatalogRow> = BTreeMap::new();
        if let Some(readme) = &ws.readme {
            for (idx, line) in readme.lines().enumerate() {
                let trimmed = line.trim_start();
                if !trimmed.starts_with('|') {
                    continue;
                }
                let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
                if cells.len() < 2 {
                    continue;
                }
                let first = cells[0].trim();
                let Some(name) = first.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
                    continue;
                };
                if !name.starts_with("wmp_") {
                    continue;
                }
                // Only rows shaped like catalog entries count: the second
                // cell names the instrument kind. Other tables mentioning
                // `wmp_*` identifiers (the crate list) are not the catalog.
                let kind = cells[1].trim();
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    continue;
                }
                catalog
                    .insert(name.to_string(), CatalogRow { kind: kind.to_string(), line: idx + 1 });
            }
        }

        for (name, reg) in &registered {
            match catalog.get(name) {
                None => out.push(Diagnostic {
                    rule: self.id(),
                    file: reg.file.clone(),
                    line: reg.line,
                    col: reg.col,
                    message: format!(
                        "metric `{name}` is registered here but missing from the README \
                         metric catalog"
                    ),
                }),
                Some(row) if row.kind != reg.kind => out.push(Diagnostic {
                    rule: self.id(),
                    file: "README.md".to_string(),
                    line: row.line,
                    col: 1,
                    message: format!(
                        "catalog lists `{name}` as a {} but code registers a {}",
                        row.kind, reg.kind
                    ),
                }),
                Some(_) => {}
            }
        }
        for (name, row) in &catalog {
            if !registered.contains_key(name) {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: "README.md".to_string(),
                    line: row.line,
                    col: 1,
                    message: format!(
                        "catalog entry `{name}` is not registered by any library code \
                         (drifted or renamed metric)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::name_ok;

    #[test]
    fn naming_convention() {
        assert!(name_ok("wmp_queries_served_total"));
        assert!(name_ok("wmp_latency_us"));
        assert!(!name_ok("wmp_"));
        assert!(!name_ok("wmp_Camel_total"));
        assert!(!name_ok("wmp__double"));
        assert!(!name_ok("queries_total"));
    }
}
