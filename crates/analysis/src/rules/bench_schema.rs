//! `bench_schema` — committed bench trajectories stay machine-readable.

use crate::diag::Diagnostic;
use crate::json::{self, Kind, Value};
use crate::rules::Rule;
use crate::workspace::Workspace;

/// Validates every committed root-level `BENCH_*.json` against the
/// `wmp_bench::report` schema (version 1):
///
/// - top-level keys are exactly `schema_version`, `bench`, `git`,
///   `test_mode`, `config`, `results` with the right types;
/// - `schema_version` is `1`;
/// - `bench` matches the file name (`BENCH_<bench>.json`);
/// - `config` values are numbers or strings;
/// - every `results` entry has a string `name`, numeric `qps` and
///   `ns_per_query`, and nothing but numbers otherwise.
///
/// The trajectory files are a contract: later PRs diff them across
/// commits, so a silently drifted key means a broken baseline comparison.
pub struct BenchSchema;

const TOP_KEYS: &[(&str, &str)] = &[
    ("schema_version", "number"),
    ("bench", "string"),
    ("git", "string"),
    ("test_mode", "bool"),
    ("config", "object"),
    ("results", "array"),
];

impl Rule for BenchSchema {
    fn id(&self) -> &'static str {
        "bench_schema"
    }

    fn summary(&self) -> &'static str {
        "committed BENCH_*.json files match the wmp_bench::report schema"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (file, contents) in &ws.bench_reports {
            let doc = match json::parse(contents) {
                Ok(doc) => doc,
                Err(e) => {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: file.clone(),
                        line: e.line,
                        col: e.col,
                        message: format!("invalid JSON: {}", e.message),
                    });
                    continue;
                }
            };
            self.check_doc(file, &doc, out);
        }
    }
}

impl BenchSchema {
    fn diag(&self, file: &str, value: &Value, message: String) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            file: file.to_string(),
            line: value.line,
            col: value.col,
            message,
        }
    }

    fn check_doc(&self, file: &str, doc: &Value, out: &mut Vec<Diagnostic>) {
        let Some(members) = doc.as_object() else {
            out.push(self.diag(file, doc, "top level must be an object".to_string()));
            return;
        };
        for (key, expected) in TOP_KEYS {
            match members.get(*key) {
                None => out.push(self.diag(
                    file,
                    doc,
                    format!("missing required key `{key}` ({expected})"),
                )),
                Some(v) if v.kind_name() != *expected => out.push(self.diag(
                    file,
                    v,
                    format!("`{key}` must be a {expected}, found {}", v.kind_name()),
                )),
                Some(_) => {}
            }
        }
        for (key, value) in members {
            if !TOP_KEYS.iter().any(|(k, _)| k == key) {
                out.push(self.diag(
                    file,
                    value,
                    format!("unknown top-level key `{key}` (not in schema version 1)"),
                ));
            }
        }
        if let Some(v) = members.get("schema_version") {
            if let Some(n) = v.as_f64().filter(|&n| n != 1.0) {
                out.push(self.diag(
                    file,
                    v,
                    format!("unsupported schema_version {n} (expected 1)"),
                ));
            }
        }
        if let Some(bench) = members.get("bench").and_then(|v| v.as_str()) {
            let expected = format!("BENCH_{bench}.json");
            if file != expected {
                out.push(self.diag(
                    file,
                    members.get("bench").unwrap_or(doc),
                    format!("`bench` is \"{bench}\" but the file is named {file}"),
                ));
            }
        }
        if let Some(config) = members.get("config").and_then(Value::as_object) {
            for (key, value) in config {
                if !matches!(value.kind, Kind::Number(_) | Kind::String(_)) {
                    out.push(self.diag(
                        file,
                        value,
                        format!(
                            "config entry `{key}` must be a number or string, found {}",
                            value.kind_name()
                        ),
                    ));
                }
            }
        }
        if let Some(results) = members.get("results").and_then(Value::as_array) {
            for entry in results {
                self.check_result(file, entry, out);
            }
        }
    }

    fn check_result(&self, file: &str, entry: &Value, out: &mut Vec<Diagnostic>) {
        let Some(members) = entry.as_object() else {
            out.push(self.diag(file, entry, "results entries must be objects".to_string()));
            return;
        };
        match members.get("name") {
            Some(v) if v.as_str().is_some() => {}
            Some(v) => out.push(self.diag(
                file,
                v,
                format!("result `name` must be a string, found {}", v.kind_name()),
            )),
            None => out.push(self.diag(file, entry, "result entry missing `name`".to_string())),
        }
        for required in ["qps", "ns_per_query"] {
            match members.get(required) {
                Some(v) if v.as_f64().is_some() => {}
                Some(v) => out.push(self.diag(
                    file,
                    v,
                    format!("result `{required}` must be a number, found {}", v.kind_name()),
                )),
                None => {
                    out.push(self.diag(file, entry, format!("result entry missing `{required}`")))
                }
            }
        }
        for (key, value) in members {
            // `name`/`qps`/`ns_per_query` have their own checks above.
            if matches!(key.as_str(), "name" | "qps" | "ns_per_query") {
                continue;
            }
            if value.as_f64().is_none() {
                out.push(self.diag(
                    file,
                    value,
                    format!("result metric `{key}` must be numeric, found {}", value.kind_name()),
                ));
            }
        }
    }
}
