//! `no_hot_panic` — no panicking constructs in hot-path library code.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::workspace::Workspace;

/// Flags `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, and
/// `unimplemented!` in library code of the hot-path crates
/// ([`crate::workspace::HOT_PATH_CRATES`]).
///
/// A panic on the serving or scheduling path does not fail one request —
/// it unwinds a worker, poisons shared state, and (under the closed-loop
/// scheduler) turns into a wrong admission decision. Hot-path code must
/// return the existing typed errors (`MlError`, `ParseError`, …) instead.
/// Invariant violations that genuinely cannot be handled may stay as
/// panics behind a `// lint: allow(no_hot_panic, <why>)` justification.
/// Test code (`#[cfg(test)]` items, `tests/`, `benches/`, `examples/`)
/// is exempt.
pub struct NoHotPanic;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for NoHotPanic {
    fn id(&self) -> &'static str {
        "no_hot_panic"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented! in hot-path library code"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.hot_path_libs() {
            let src = &file.source;
            for (offset, ident) in src.idents() {
                let (line, col) = src.line_col(offset);
                if src.is_test_line(line) {
                    continue;
                }
                let after = src.next_code_byte(offset + ident.len()).map(|(_, b)| b);
                if PANIC_MACROS.contains(&ident) && after == Some(b'!') {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "`{ident}!` in hot-path code — return a typed error instead, or \
                             justify with `lint: allow(no_hot_panic, <reason>)`"
                        ),
                    });
                } else if PANIC_METHODS.contains(&ident)
                    && after == Some(b'(')
                    && src.prev_code_byte(offset).map(|(_, b)| b) == Some(b'.')
                    && expect_shape_ok(src, offset, ident)
                {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "`.{ident}()` in hot-path code — propagate the error (`?`) or \
                             handle it; justify unavoidable sites with \
                             `lint: allow(no_hot_panic, <reason>)`"
                        ),
                    });
                }
            }
        }
    }
}

/// Distinguishes `Option::expect`/`Result::expect` from project methods
/// that happen to be named `expect` (the `wmp_obs` JSON parser has one):
/// the panic idiom always carries a string-literal message, so `.expect(`
/// only counts when its first argument is a string literal. `.unwrap()`
/// takes no argument and always counts.
fn expect_shape_ok(src: &crate::source::SourceFile, offset: usize, ident: &str) -> bool {
    if ident != "expect" {
        return true;
    }
    let Some((paren, _)) = src.next_code_byte(offset + ident.len()) else {
        return false;
    };
    src.string_after(paren + 1).is_some()
}
