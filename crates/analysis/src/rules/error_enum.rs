//! `error_enum` — public error enums evolve without breaking callers.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Checks every `pub enum *Error` in library code:
///
/// 1. It is `#[non_exhaustive]` — new failure modes (a new codec
///    corruption case, a new SQL construct) must be addable without a
///    semver break, and downstream `match`es must already carry the
///    wildcard arm that makes that safe.
/// 2. It implements `Display` in the same file, and the `Display` body
///    contains no `_ =>` wildcard arm — *inside the crate* the match must
///    stay exhaustive, so adding a variant forces updating its rendering
///    rather than silently printing a fallback.
pub struct ErrorEnum;

impl Rule for ErrorEnum {
    fn id(&self) -> &'static str {
        "error_enum"
    }

    fn summary(&self) -> &'static str {
        "public error enums are #[non_exhaustive] with exhaustive Display"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.libs() {
            let src = &file.source;
            let idents: Vec<(usize, &str)> = src.idents().collect();
            for (i, &(_, ident)) in idents.iter().enumerate() {
                if ident != "enum" || i == 0 || i + 1 >= idents.len() {
                    continue;
                }
                let (prev_off, prev) = idents[i - 1];
                let (name_off, name) = idents[i + 1];
                if prev != "pub" || !name.ends_with("Error") || name == "Error" {
                    continue;
                }
                let (line, col) = src.line_col(name_off);
                if src.is_test_line(line) {
                    continue;
                }
                if !has_attr_above(src, prev_off, "non_exhaustive") {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "public error enum `{name}` must be `#[non_exhaustive]` so new \
                             failure modes are not a breaking change"
                        ),
                    });
                }
                match display_impl_wildcard(src, name) {
                    DisplayImpl::Missing => out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "public error enum `{name}` has no `Display` impl in this file"
                        ),
                    }),
                    DisplayImpl::Wildcard { line, col } => out.push(Diagnostic {
                        rule: self.id(),
                        file: src.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "`Display` for `{name}` uses a `_ =>` wildcard — match every \
                             variant so new ones cannot render a silent fallback"
                        ),
                    }),
                    DisplayImpl::Exhaustive => {}
                }
            }
        }
    }
}

enum DisplayImpl {
    Missing,
    Exhaustive,
    Wildcard { line: usize, col: usize },
}

/// Scans the contiguous attribute/comment block above `item_off` for
/// `#[<attr>]`.
fn has_attr_above(src: &SourceFile, item_off: usize, attr: &str) -> bool {
    let (item_line, _) = src.line_col(item_off);
    let mut cursor = item_line;
    while cursor > 1 {
        let above = src.masked_line(cursor - 1);
        let trimmed = above.trim();
        let is_attr_or_comment = trimmed.starts_with('#')
            || trimmed.is_empty() && src.comments_on_line(cursor - 1).next().is_some()
            || trimmed.ends_with(']');
        if !is_attr_or_comment {
            return false;
        }
        if trimmed.contains(attr) {
            return true;
        }
        cursor -= 1;
    }
    false
}

/// Finds `impl … Display for <name>` and reports whether its body contains
/// a `_ =>` wildcard arm.
fn display_impl_wildcard(src: &SourceFile, name: &str) -> DisplayImpl {
    let bytes = src.masked.as_bytes();
    let mut search = 0;
    while let Some(found) = src.masked[search..].find("Display for ") {
        let at = search + found;
        search = at + 1;
        let after = &src.masked[at + "Display for ".len()..];
        if !after.trim_start().starts_with(name) {
            continue;
        }
        // Confirm the type name ends there (not a prefix of a longer name).
        let rest = after.trim_start();
        let tail = rest[name.len()..].chars().next();
        if tail.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        // Find the impl block and scan it for `_ =>` / `_ if … =>`.
        let Some(open_rel) = src.masked[at..].find('{') else { return DisplayImpl::Missing };
        let open = at + open_rel;
        let mut depth = 0usize;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b'_' => {
                    let prev_ok = !bytes[j.saturating_sub(1)].is_ascii_alphanumeric()
                        && bytes[j.saturating_sub(1)] != b'_';
                    let next = src.next_code_byte(j + 1);
                    if prev_ok {
                        if let Some((k, b)) = next {
                            let arrow = b == b'=' && bytes.get(k + 1) == Some(&b'>');
                            // `_ if cond =>` guards count as wildcards too.
                            let guard = src.masked[k..].trim_start().starts_with("if ");
                            if arrow || guard {
                                let (line, col) = src.line_col(j);
                                return DisplayImpl::Wildcard { line, col };
                            }
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        return DisplayImpl::Exhaustive;
    }
    DisplayImpl::Missing
}
