//! `codec_tags` — persisted tag spaces stay unique and append-only.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Mechanically enforces the codec's versioning policy (documented in
/// `learnedwmp_core::codec`): tag values are never reused and never
/// reassigned. The rule scans library files named `codec.rs` for
///
/// - **tag tables** — `const <NAME>_TAGS: &[(u8, &str)] = &[(1, "…"), …]`:
///   entries must have unique values, unique names, and strictly
///   increasing values in declaration order (append-only ⇒ monotonic);
/// - **wrapper/tag constants** — `const WRAPPER_X: u8 = n;` (any const
///   whose name contains `WRAPPER` or `TAG`): values must be unique within
///   the file;
/// - **version constants** — `FORMAT_VERSION`/`MIN_FORMAT_VERSION` pairs:
///   `MIN_FORMAT_VERSION <= FORMAT_VERSION` must hold.
pub struct CodecTags;

impl Rule for CodecTags {
    fn id(&self) -> &'static str {
        "codec_tags"
    }

    fn summary(&self) -> &'static str {
        "codec tag tables and version constants are unique and append-only"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.libs() {
            if !file.source.rel.ends_with("codec.rs") {
                continue;
            }
            check_file(self.id(), &file.source, out);
        }
    }
}

fn check_file(rule: &'static str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let idents: Vec<(usize, &str)> = src.idents().collect();
    let mut scalar_consts: Vec<(String, u64, usize)> = Vec::new(); // name, value, offset
    for (i, &(_, ident)) in idents.iter().enumerate() {
        if ident != "const" || i + 1 >= idents.len() {
            continue;
        }
        let (name_off, name) = idents[i + 1];
        let (line, _) = src.line_col(name_off);
        if src.is_test_line(line) {
            continue;
        }
        if name.ends_with("_TAGS") {
            check_tag_table(rule, src, name, name_off, out);
        } else if name.contains("TAG") || name.contains("WRAPPER") || name.ends_with("_VERSION") {
            if let Some(value) = scalar_const_value(src, name_off + name.len()) {
                scalar_consts.push((name.to_string(), value, name_off));
            }
        }
    }

    // Wrapper/tag scalar constants: unique values within the file.
    let scalars: Vec<&(String, u64, usize)> =
        scalar_consts.iter().filter(|(n, _, _)| !n.ends_with("_VERSION")).collect();
    for (i, (name, value, offset)) in scalars.iter().enumerate() {
        if let Some((other, _, _)) = scalars[..i].iter().find(|(_, v, _)| v == value) {
            let (line, col) = src.line_col(*offset);
            out.push(Diagnostic {
                rule,
                file: src.rel.clone(),
                line,
                col,
                message: format!(
                    "tag constant `{name}` reuses value {value} already assigned to `{other}` \
                     — tag spaces are append-only"
                ),
            });
        }
    }

    // FORMAT_VERSION / MIN_FORMAT_VERSION coherence.
    let find =
        |wanted: &str| scalar_consts.iter().find(|(n, _, _)| n == wanted).map(|(_, v, o)| (*v, *o));
    if let (Some((max, _)), Some((min, min_off))) =
        (find("FORMAT_VERSION"), find("MIN_FORMAT_VERSION"))
    {
        if min > max {
            let (line, col) = src.line_col(min_off);
            out.push(Diagnostic {
                rule,
                file: src.rel.clone(),
                line,
                col,
                message: format!(
                    "MIN_FORMAT_VERSION ({min}) exceeds FORMAT_VERSION ({max}) — the loader \
                     would reject every artifact this build writes"
                ),
            });
        }
    }
}

/// Parses `: <type> = <int>` after a const name; `None` when the
/// initializer is not an integer literal.
fn scalar_const_value(src: &SourceFile, after_name: usize) -> Option<u64> {
    let eq = src.masked[after_name..].find('=')? + after_name;
    let semi = src.masked[eq..].find(';')? + eq;
    let init = src.masked[eq + 1..semi].trim().replace('_', "");
    init.parse().ok()
}

/// Validates one `const <NAME>_TAGS: &[(u8, &str)] = &[ … ];` table.
fn check_tag_table(
    rule: &'static str,
    src: &SourceFile,
    table: &str,
    name_off: usize,
    out: &mut Vec<Diagnostic>,
) {
    let Some(open_rel) = src.masked[name_off..].find("&[") else { return };
    // Skip the type's `&[(u8, &str)]` — the initializer is the *second*
    // `&[` when a slice type annotation is present, located after `=`.
    let Some(eq_rel) = src.masked[name_off..].find('=') else { return };
    let eq = name_off + eq_rel;
    let open = if name_off + open_rel > eq {
        name_off + open_rel
    } else {
        match src.masked[eq..].find("&[") {
            Some(rel) => eq + rel,
            None => return,
        }
    };
    let Some(close_rel) = src.masked[open..].find(']') else { return };
    let body_start = open + 2;
    let body_end = open + close_rel;

    // Entries are `(<int>, "<name>")`; values come from the masked text,
    // names from the string-literal list inside the body range.
    let mut entries: Vec<(u64, String, usize)> = Vec::new();
    let bytes = src.masked.as_bytes();
    let mut i = body_start;
    while i < body_end {
        if bytes[i] == b'(' {
            let num_start = match src.next_code_byte(i + 1) {
                Some((p, b)) if b.is_ascii_digit() => p,
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut j = num_start;
            while j < body_end && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
            let value: u64 = match src.masked[num_start..j].replace('_', "").parse() {
                Ok(v) => v,
                Err(_) => {
                    i = j;
                    continue;
                }
            };
            let name = src
                .strings
                .iter()
                .find(|s| s.offset > j && s.offset < body_end)
                .map(|s| s.value.clone())
                .unwrap_or_default();
            entries.push((value, name, num_start));
            // Advance past this entry's string so the next `find` does not
            // re-match it.
            i = src
                .strings
                .iter()
                .find(|s| s.offset > j && s.offset < body_end)
                .map_or(j, |s| s.offset + s.value.len() + 2);
        } else {
            i += 1;
        }
    }

    for (i, (value, name, offset)) in entries.iter().enumerate() {
        let (line, col) = src.line_col(*offset);
        if let Some((_, other, _)) = entries[..i].iter().find(|(v, _, _)| v == value) {
            out.push(Diagnostic {
                rule,
                file: src.rel.clone(),
                line,
                col,
                message: format!(
                    "`{table}` assigns tag {value} twice (`{other}` and `{name}`) — tags are \
                     append-only and never reused"
                ),
            });
        }
        if !name.is_empty() && entries[..i].iter().any(|(_, n, _)| n == name) {
            out.push(Diagnostic {
                rule,
                file: src.rel.clone(),
                line,
                col,
                message: format!("`{table}` registers `{name}` under two different tags"),
            });
        }
        if let Some((prev_value, _, _)) = entries[..i].last() {
            if value < prev_value {
                out.push(Diagnostic {
                    rule,
                    file: src.rel.clone(),
                    line,
                    col,
                    message: format!(
                        "`{table}` tag {value} is not monotonically assigned (follows \
                         {prev_value}) — append new tags at the end with the next free value"
                    ),
                });
            }
        }
    }
}
