//! The `wmp-lint` CLI: runs every registered project lint over the
//! workspace and exits nonzero on violations.
//!
//! ```text
//! wmp-lint [--root <dir>] [--rules <id,id,…>] [--json <path>] [--list]
//! ```
//!
//! Without `--root`, the workspace root is found by walking up from the
//! current directory to the first directory containing `crates/`.

use std::path::PathBuf;
use std::process::ExitCode;

use wmp_analysis::all_rules;

fn usage() -> ! {
    eprintln!(
        "usage: wmp-lint [--root <dir>] [--rules <id,id,...>] [--json <path>] [--list]\n\
         \n\
         Runs the LearnedWMP project lints and exits 1 on violations.\n\
         --root   workspace root (default: nearest ancestor containing crates/)\n\
         --rules  comma-separated subset of rule ids to run\n\
         --json   also write the machine-readable report to <path>\n\
         --list   print the rule registry and exit"
    );
    std::process::exit(2)
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut rule_filter: Option<Vec<String>> = None;
    let mut list = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--json" => json_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--rules" => {
                let spec = args.next().unwrap_or_else(|| usage());
                rule_filter = Some(spec.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--list" => list = true,
            _ => usage(),
        }
    }

    let mut rules = all_rules();
    if list {
        for rule in &rules {
            println!("{:<16} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(filter) = &rule_filter {
        let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        for id in filter {
            if !known.contains(&id.as_str()) {
                eprintln!("wmp-lint: unknown rule `{id}` (known: {})", known.join(", "));
                return ExitCode::from(2);
            }
        }
        rules.retain(|r| filter.iter().any(|id| id == r.id()));
    }

    let root = match root.or_else(find_root) {
        Some(root) => root,
        None => {
            eprintln!("wmp-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match wmp_analysis::run(&root, &rules) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("wmp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for diagnostic in &report.diagnostics {
        println!("{diagnostic}");
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("wmp-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let scanned = report.files_scanned;
    if report.is_clean() {
        println!("wmp-lint: clean ({scanned} files, {} rules)", report.rules.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "wmp-lint: {} violation(s) across {scanned} files — fix or justify with \
             `lint: allow(<rule>, <reason>)`",
            report.diagnostics.len()
        );
        ExitCode::FAILURE
    }
}
