//! Integration tests for the lint engine: every rule is exercised against
//! a committed known-bad fixture (exact spans asserted), and the workspace
//! itself must be clean under the full rule set.

use std::path::{Path, PathBuf};

use wmp_analysis::rules::{
    AtomicOrdering, BenchSchema, CodecTags, ErrorEnum, MetricCatalog, NoHotPanic,
};
use wmp_analysis::source::SourceFile;
use wmp_analysis::workspace::{FileClass, Workspace, WsFile};
use wmp_analysis::{all_rules, Diagnostic, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// A one-file workspace: the fixture masquerades as hot-path library code.
fn ws_with(rel: &str, text: String) -> Workspace {
    ws_full(rel, text, None, Vec::new())
}

fn ws_full(
    rel: &str,
    text: String,
    readme: Option<String>,
    bench_reports: Vec<(String, String)>,
) -> Workspace {
    let source = SourceFile::parse(PathBuf::from(rel), rel.to_string(), text);
    Workspace {
        root: PathBuf::new(),
        files: vec![WsFile { source, krate: "serve".to_string(), class: FileClass::Lib }],
        readme,
        bench_reports,
    }
}

fn run_rule(rule: &dyn Rule, ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule.check(ws, &mut out);
    // Apply suppression the way the engine does.
    out.retain(|d| {
        !ws.files.iter().any(|f| f.source.rel == d.file && f.source.is_suppressed(d.rule, d.line))
    });
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// 1-based (line, col) of `needle`'s `occurrence`-th appearance (1-based)
/// in `text` — the fixture-side way to state an exact expected span.
fn span_of(text: &str, needle: &str, occurrence: usize) -> (usize, usize) {
    let mut from = 0;
    let mut found = 0;
    loop {
        let at = text[from..].find(needle).expect("needle present in fixture") + from;
        found += 1;
        if found == occurrence {
            let line = text[..at].matches('\n').count() + 1;
            let col = at - text[..at].rfind('\n').map_or(0, |p| p + 1) + 1;
            return (line, col);
        }
        from = at + 1;
    }
}

#[test]
fn no_hot_panic_fixture_spans() {
    let text = fixture("bad_hot_panic.rs");
    let ws = ws_with("crates/serve/src/bad_hot_panic.rs", text.clone());
    let diags = run_rule(&NoHotPanic, &ws);

    // Three violations: the suppressed unwrap and the #[cfg(test)] unwrap
    // must NOT fire.
    assert_eq!(diags.len(), 3, "diagnostics: {diags:#?}");
    let expected = [
        (span_of(&text, "unwrap", 1), "`.unwrap()`"),
        (span_of(&text, "expect", 1), "`.expect()`"),
        (span_of(&text, "panic!", 1), "`panic!`"),
    ];
    for (d, ((line, col), what)) in diags.iter().zip(expected) {
        assert_eq!((d.line, d.col), (line, col), "span for {what}: {d}");
        assert!(d.message.contains(what), "message for {what}: {d}");
        assert_eq!(d.rule, "no_hot_panic");
    }
}

#[test]
fn no_hot_panic_ignores_test_targets() {
    let text = fixture("bad_hot_panic.rs");
    let source =
        SourceFile::parse(PathBuf::from("t.rs"), "crates/serve/tests/bad.rs".to_string(), text);
    let ws = Workspace {
        root: PathBuf::new(),
        files: vec![WsFile { source, krate: "serve".to_string(), class: FileClass::Test }],
        readme: None,
        bench_reports: Vec::new(),
    };
    assert!(run_rule(&NoHotPanic, &ws).is_empty(), "test targets are exempt");
}

#[test]
fn atomic_ordering_fixture_spans() {
    let text = fixture("bad_atomic_ordering.rs");
    let ws = ws_with("crates/serve/src/bad_atomic_ordering.rs", text.clone());
    let diags = run_rule(&AtomicOrdering, &ws);

    // The justified Relaxed read must not fire; the unjustified Relaxed and
    // the bare SeqCst must.
    assert_eq!(diags.len(), 2, "diagnostics: {diags:#?}");
    let relaxed = span_of(&text, "Ordering::Relaxed", 1);
    assert_eq!((diags[0].line, diags[0].col), relaxed);
    assert!(diags[0].message.contains("Relaxed"), "{}", diags[0]);
    let seqcst = span_of(&text, "Ordering::SeqCst", 1);
    assert_eq!((diags[1].line, diags[1].col), seqcst);
    assert!(diags[1].message.contains("SeqCst"), "{}", diags[1]);
}

#[test]
fn error_enum_fixture_spans() {
    let text = fixture("bad_error_enum.rs");
    let ws = ws_with("crates/serve/src/bad_error_enum.rs", text.clone());
    let diags = run_rule(&ErrorEnum, &ws);

    assert_eq!(diags.len(), 2, "diagnostics: {diags:#?}");
    // `pub enum FixtureError` — anchored at the type name.
    let name = span_of(&text, "FixtureError {", 1);
    assert_eq!((diags[0].line, diags[0].col), name);
    assert!(diags[0].message.contains("non_exhaustive"), "{}", diags[0]);
    // `_ => write!(f, "other")` — anchored at the wildcard.
    let wildcard = span_of(&text, "_ =>", 1);
    assert_eq!((diags[1].line, diags[1].col), wildcard);
    assert!(diags[1].message.contains("wildcard"), "{}", diags[1]);
}

#[test]
fn codec_tags_fixture_spans() {
    let text = fixture("bad_codec.rs");
    let ws = ws_with("crates/serve/src/codec.rs", text.clone());
    let diags = run_rule(&CodecTags, &ws);

    assert_eq!(diags.len(), 4, "diagnostics: {diags:#?}");
    // MIN_FORMAT_VERSION (2) > FORMAT_VERSION (1).
    assert_eq!((diags[0].line, diags[0].col), span_of(&text, "MIN_FORMAT_VERSION", 1));
    assert!(diags[0].message.contains("exceeds FORMAT_VERSION"), "{}", diags[0]);
    // (2, "gamma") follows (3, "beta"): non-monotonic.
    assert_eq!((diags[1].line, diags[1].col), span_of(&text, "2, \"gamma\"", 1));
    assert!(diags[1].message.contains("not monotonically assigned"), "{}", diags[1]);
    // (3, "delta") reuses beta's tag.
    assert_eq!((diags[2].line, diags[2].col), span_of(&text, "3, \"delta\"", 1));
    assert!(diags[2].message.contains("assigns tag 3 twice"), "{}", diags[2]);
    // WRAPPER_FANCY reuses WRAPPER_PLAIN's value.
    assert_eq!((diags[3].line, diags[3].col), span_of(&text, "WRAPPER_FANCY", 1));
    assert!(diags[3].message.contains("reuses value 0"), "{}", diags[3]);
}

#[test]
fn metric_catalog_fixture_spans() {
    let text = fixture("bad_metrics.rs");
    let readme = "\
| metric | kind | meaning |
|---|---|---|
| `wmp_fixture_requests` | gauge | kind mismatch: registered as counter |
| `wmp_Fixture_depth` | gauge | cataloged, though the name is invalid |
| `wmp_fixture_good_total` | counter | cataloged correctly |
| `wmp_fixture_ghost_total` | counter | never registered |
";
    let ws = ws_full(
        "crates/serve/src/bad_metrics.rs",
        text.clone(),
        Some(readme.to_string()),
        Vec::new(),
    );
    let diags = run_rule(&MetricCatalog, &ws);
    let by_message = |needle: &str| {
        diags
            .iter()
            .find(|d| d.message.contains(needle))
            .unwrap_or_else(|| panic!("no diagnostic matching {needle:?} in {diags:#?}"))
    };

    assert_eq!(diags.len(), 4, "diagnostics: {diags:#?}");
    let missing_total = by_message("must end in `_total`");
    assert_eq!(
        (missing_total.line, missing_total.col),
        span_of(&text, "\"wmp_fixture_requests\"", 1),
    );
    let bad_name = by_message("violates the naming convention");
    assert_eq!((bad_name.line, bad_name.col), span_of(&text, "\"wmp_Fixture_depth\"", 1));
    let mismatch = by_message("as a gauge but code registers a counter");
    assert_eq!((mismatch.file.as_str(), mismatch.line), ("README.md", 3));
    let ghost = by_message("`wmp_fixture_ghost_total` is not registered");
    assert_eq!((ghost.file.as_str(), ghost.line), ("README.md", 6));
}

#[test]
fn bench_schema_fixture_spans() {
    let text = fixture("bad_bench.json");
    let ws = ws_full(
        "crates/serve/src/lib.rs",
        String::new(),
        None,
        vec![("BENCH_bad_bench.json".to_string(), text.clone())],
    );
    let diags = run_rule(&BenchSchema, &ws);
    let by_message = |needle: &str| {
        diags
            .iter()
            .find(|d| d.message.contains(needle))
            .unwrap_or_else(|| panic!("no diagnostic matching {needle:?} in {diags:#?}"))
    };

    assert_eq!(diags.len(), 7, "diagnostics: {diags:#?}");
    let version = by_message("unsupported schema_version");
    assert_eq!((version.line, version.col), span_of(&text, "2,", 1));
    let name = by_message("but the file is named");
    assert_eq!((name.line, name.col), span_of(&text, "\"other_name\"", 1));
    let config = by_message("config entry `threads`");
    assert_eq!((config.line, config.col), span_of(&text, "[1]", 1));
    let qps = by_message("result `qps` must be a number");
    assert_eq!((qps.line, qps.col), span_of(&text, "\"fast\"", 1));
    assert!(by_message("missing required key `test_mode`").file == "BENCH_bad_bench.json");
    let _ = by_message("unknown top-level key `extra`");
    // `ns_per_query` is also absent — accounted inside the same entry diag?
    // No: missing `ns_per_query` is its own diagnostic only when the entry
    // parses; here it is one of the seven.
    let _ = by_message("missing `ns_per_query`");
}

#[test]
fn bench_schema_diags_exactly() {
    // Companion to the above: pin the exact multiset of messages so a new
    // spurious diagnostic cannot hide behind `by_message`.
    let text = fixture("bad_bench.json");
    let ws = ws_full(
        "crates/serve/src/lib.rs",
        String::new(),
        None,
        vec![("BENCH_bad_bench.json".to_string(), text)],
    );
    let mut kinds: Vec<&str> = run_rule(&BenchSchema, &ws)
        .iter()
        .map(|d| {
            [
                ("missing required key `test_mode`", "missing_test_mode"),
                ("unknown top-level key `extra`", "unknown_extra"),
                ("unsupported schema_version", "bad_version"),
                ("but the file is named", "name_mismatch"),
                ("config entry `threads`", "bad_config"),
                ("result `qps` must be a number", "bad_qps"),
                ("missing `ns_per_query`", "missing_nspq"),
            ]
            .iter()
            .find(|(needle, _)| d.message.contains(needle))
            .map(|(_, tag)| *tag)
            .unwrap_or("UNEXPECTED")
        })
        .collect::<Vec<_>>();
    kinds.sort_unstable();
    // bad_qps and missing_nspq are both present: 7 total. (qps exists but
    // is a string; ns_per_query is absent.) The string-typed qps must NOT
    // also trip the generic "must be numeric" sweep — that would be a
    // double report.
    assert_eq!(
        kinds,
        [
            "bad_config",
            "bad_qps",
            "bad_version",
            "missing_nspq",
            "missing_test_mode",
            "name_mismatch",
            "unknown_extra",
        ],
    );
}

#[test]
fn suppression_reaches_next_code_line_only() {
    let text = "\
// lint: allow(no_hot_panic, covers the next code line)
// a second pure-comment line keeps the directive walking down
pub fn f(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn g(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
";
    let ws = ws_with("crates/serve/src/s.rs", text.to_string());
    let diags = run_rule(&NoHotPanic, &ws);
    // Directive lands on line 3 (`pub fn f`), not line 4 — so BOTH unwraps
    // fire: suppression is line-precise, not block-scoped.
    assert_eq!(diags.len(), 2, "diagnostics: {diags:#?}");
}

#[test]
fn suppression_on_same_line_works() {
    let text = "\
pub fn f(v: &[u8]) -> u8 {
    *v.first().unwrap() // lint: allow(no_hot_panic, length checked by caller)
}
";
    let ws = ws_with("crates/serve/src/s.rs", text.to_string());
    assert!(run_rule(&NoHotPanic, &ws).is_empty());
}

#[test]
fn malformed_directive_is_reported() {
    let text = "\
pub fn f(v: &[u8]) -> u8 {
    *v.first().unwrap() // lint: allow(no_hot_panic)
}
";
    let source =
        SourceFile::parse(PathBuf::from("s.rs"), "crates/serve/src/s.rs".to_string(), text.into());
    let ws = Workspace {
        root: PathBuf::new(),
        files: vec![WsFile { source, krate: "serve".to_string(), class: FileClass::Lib }],
        readme: None,
        bench_reports: Vec::new(),
    };
    let report = wmp_analysis::run_on(&ws, &all_rules());
    // The reason-less directive does NOT suppress, and is itself reported.
    assert!(report.diagnostics.iter().any(|d| d.rule == "no_hot_panic"), "{report:#?}");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "lint_directive" && d.message.contains("needs a reason")),
        "{report:#?}",
    );
}

#[test]
fn json_report_shape() {
    let text = fixture("bad_atomic_ordering.rs");
    let ws = ws_with("crates/serve/src/bad.rs", text);
    let report = wmp_analysis::run_on(&ws, &all_rules());
    let json = report.to_json();
    let doc = wmp_analysis::json::parse(&json).expect("report JSON parses");
    let members = doc.as_object().expect("object");
    assert_eq!(members.get("schema_version").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(
        members.get("violations").and_then(|v| v.as_array()).map(<[_]>::len),
        Some(report.diagnostics.len()),
    );
    assert_eq!(members.get("rules").and_then(|v| v.as_array()).map(<[_]>::len), Some(6));
}

/// The tentpole guarantee: the workspace itself is lint-clean. Every rule
/// runs over the real tree exactly as `wmp-lint` does in CI.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels under the root")
        .to_path_buf();
    let report = wmp_analysis::run(&root, &all_rules()).expect("workspace discovery");
    assert!(report.files_scanned > 100, "suspiciously few files: {}", report.files_scanned);
    assert!(
        report.is_clean(),
        "the workspace must stay lint-clean; violations:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n"),
    );
}
