//! Deliberately bad: metric registrations that drift from the catalog.

use std::sync::Arc;

pub struct Registry;

impl Registry {
    pub fn counter(&self, name: &str, help: &str) -> Arc<u64> {
        let _ = (name, help);
        Arc::new(0)
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<u64> {
        let _ = (name, help);
        Arc::new(0)
    }
}

pub fn register(r: &Registry) {
    let _ = r.counter("wmp_fixture_requests", "bad: counter without _total");
    let _ = r.gauge("wmp_Fixture_depth", "bad: uppercase violates naming");
    let _ = r.counter("wmp_fixture_good_total", "cataloged correctly");
}
