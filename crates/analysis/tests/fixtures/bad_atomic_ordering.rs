//! Deliberately bad: unjustified atomic orderings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    pub fn justified(&self) -> u64 {
        // ordering: Relaxed — advisory counter read, fixture-justified.
        self.hits.load(Ordering::Relaxed)
    }
}
