//! Deliberately bad: a public error enum without the evolution contract.

use std::fmt;

/// Missing `#[non_exhaustive]`, and its `Display` hides variants behind a
/// wildcard arm.
#[derive(Debug)]
pub enum FixtureError {
    Broken,
    Missing,
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixtureError::Broken => write!(f, "broken"),
            _ => write!(f, "other"),
        }
    }
}
