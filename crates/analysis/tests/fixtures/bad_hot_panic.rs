//! Deliberately bad: panicking constructs on the hot path.
//! Kept under tests/fixtures/ so the workspace walker never lints it;
//! the lint test suite loads it by hand and asserts the exact spans.

pub fn scale(values: &[f64]) -> f64 {
    let first = values.first().unwrap();
    let parsed: f64 = "3.2".parse().expect("literal parses");
    if values.len() > 3 {
        panic!("too many values");
    }
    first + parsed
}

pub fn allowed(values: &[f64]) -> f64 {
    // lint: allow(no_hot_panic, fixture demonstrates a justified site)
    values.first().unwrap() + 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_test_code_unwrap_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
