//! Deliberately bad: a codec whose tag space violates the append-only
//! policy and whose version constants are incoherent.

pub const FORMAT_VERSION: u16 = 1;
pub const MIN_FORMAT_VERSION: u16 = 2;

const SECTION_TAGS: &[(u8, &str)] = &[
    (1, "alpha"),
    (3, "beta"),
    (2, "gamma"),
    (3, "delta"),
];

const WRAPPER_PLAIN: u8 = 0;
const WRAPPER_FANCY: u8 = 0;
