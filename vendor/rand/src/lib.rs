//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored shim provides the slice of `rand` 0.8 that the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! Streams are deterministic functions of the seed (xoshiro256** seeded via
//! splitmix64), which is all the workspace relies on — no test encodes the
//! upstream `StdRng` byte stream.

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`distributions::Standard`] can sample.
pub mod distributions {
    use super::RngCore;

    /// A sampling distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural range
    /// (`[0, 1)` for floats).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
}

mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a bounded range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
        fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
            -> Self;
    }

    macro_rules! int_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let width = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                    assert!(width > 0, "cannot sample empty range");
                    let v = ((rng.next_u64() as u128) % width) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    lo + (hi - lo) * unit as $t
                }
            }
        )*};
    }
    float_sample_uniform!(f32, f64);

    /// Ranges that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value from the range. Panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_in(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_in(start, end, true, rng)
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256**).
    ///
    /// Unlike upstream `rand`, the stream is *not* ChaCha12 — only
    /// seed-determinism is guaranteed, which is the workspace's contract.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0x2545F4914F6CDD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Random selection from slices.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place, returning the
        /// shuffled prefix and untouched-order suffix.
        fn partial_shuffle<R: Rng>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng>(&mut self, rng: &mut R, amount: usize) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}
