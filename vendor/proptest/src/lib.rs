//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! supplies the property-testing surface the workspace uses: the
//! [`proptest!`] macro, range/tuple/`prop::collection::vec` strategies,
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' debug description left to the assertion
//! message. Case generation is deterministic per test (seeded from the test
//! name), so failures reproduce across runs.

pub mod test_runner {
    //! Config, error type, and the deterministic case RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The RNG driving strategy generation.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Deterministic RNG derived from the test's name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` returns for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for the full natural range of a type ([`crate::arbitrary::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen::<f64>() < 0.5
        }
    }

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }
    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;

    /// Strategy over the natural range of `T` (e.g. `any::<bool>()`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for collection strategies: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions that run a property over many generated cases.
///
/// Supported form (a subset of upstream proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// `assert_ne!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}
