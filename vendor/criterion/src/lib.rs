//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the benchmarking surface the workspace's `harness = false`
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over a fixed wall-clock budget, and the per-iteration median,
//! mean, and min are printed. There are no plots, no statistics framework,
//! and no baseline storage — enough to compare hot paths locally. Under
//! `--test` (as passed by `cargo test --benches`) each benchmark runs exactly
//! one iteration so CI stays fast.

use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, not used for
/// planning in this shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Per-benchmark measurement settings.
#[derive(Clone, Copy, Debug)]
struct Settings {
    /// Upper bound on measured iterations.
    sample_size: usize,
    /// Wall-clock measurement budget.
    budget: Duration,
    /// Run exactly one iteration (test mode).
    test_mode: bool,
}

impl Settings {
    fn from_env() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Settings { sample_size: 60, budget: Duration::from_millis(300), test_mode }
    }
}

/// Times a single benchmark's routine.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, called once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Measures `routine` on fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.settings.test_mode {
            let input = setup();
            black_box(routine(input));
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warmup.
        let input = setup();
        black_box(routine(input));
        let started = Instant::now();
        while self.samples.len() < self.settings.sample_size
            && started.elapsed() < self.settings.budget
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], test_mode: bool) {
    if test_mode {
        println!("test bench {name} ... ok");
        return;
    }
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  (n={})",
        samples.len()
    );
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { settings: Settings::from_env() }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { settings: self.settings, samples: Vec::new() };
        f(&mut b);
        report(&id, &mut b.samples, self.settings.test_mode);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.settings.test_mode {
            println!("group {name}");
        }
        BenchmarkGroup { criterion: self, name }
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.settings.sample_size = n;
        self
    }

    /// Extends the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.settings.budget = budget;
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
