//! Capacity planning (the paper's §I motivation): given the analytic
//! workloads a warehouse serves, how much working memory should the system
//! provision so that batches of concurrent queries fit?
//!
//! The example provisions for the 95th-percentile workload demand under three
//! estimators — the DBMS heuristic, LearnedWMP, and an oracle — and shows how
//! over-/under-provisioned each leaves the system.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, ModelKind, SingleWmpDbms, TemplateSpec,
    WorkloadPredictor,
};
use learnedwmp::mlkit::metrics::quantile;
use learnedwmp::plan::{ResourceKind, ResourceVector};
use learnedwmp::sim::AdmissionController;
use learnedwmp::workloads::QueryRecord;

fn main() {
    println!("Generating a TPC-DS-style history (18,000 queries) for capacity planning...");
    let log = learnedwmp::workloads::tpcds::generate(18_000, 11).expect("generation");
    let (train_idx, test_idx) = log.train_test_split(0.8, 42);
    let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();
    let future: Vec<&QueryRecord> = test_idx.iter().map(|&i| &log.records[i]).collect();

    let model = LearnedWmp::builder()
        .model(ModelKind::Rf)
        .templates(TemplateSpec::PlanKMeans { k: 100, seed: 42 })
        .fit_refs(&train, &log.catalog)
        .expect("training");

    // "Future" concurrent batches the capacity plan must accommodate; both
    // estimators answer through the `WorkloadPredictor` trait's batched path.
    let batches = batch_workloads(&future, 10, 3, LabelMode::Sum);
    let actual: Vec<f64> = batches.iter().map(|w| w.y_mb()).collect();
    let predict = |p: &dyn WorkloadPredictor| -> Vec<f64> {
        p.predict_workloads(&future, &batches).expect("prediction")
    };
    let learned = predict(&model);
    let heuristic = predict(&SingleWmpDbms);

    // Provision at the predicted 95th percentile + 10% headroom.
    let plan = |preds: &[f64]| quantile(preds, 0.95).expect("quantile") * 1.1;
    let oracle_cap = plan(&actual);
    let learned_cap = plan(&learned);
    let heuristic_cap = plan(&heuristic);

    let assess = |name: &str, cap: f64| {
        let overflows = actual.iter().filter(|&&y| y > cap).count();
        let headroom: f64 =
            actual.iter().map(|y| (cap - y).max(0.0)).sum::<f64>() / actual.len() as f64;
        println!(
            "  {name:<16} provision {cap:>9.0} MB | workloads over budget: {overflows:>3}/{} | mean idle headroom {headroom:>8.0} MB",
            actual.len()
        );
    };

    println!("\nCapacity plan at predicted P95 + 10% headroom ({} future batches):", batches.len());
    assess("oracle", oracle_cap);
    assess("LearnedWMP-RF", learned_cap);
    assess("DBMS heuristic", heuristic_cap);
    println!(
        "\n  -> LearnedWMP's plan deviates {:+.1}% from the oracle capacity; the heuristic's deviates {:+.1}%.",
        (learned_cap / oracle_cap - 1.0) * 100.0,
        (heuristic_cap / oracle_cap - 1.0) * 100.0
    );

    // ------------------------------------------------------------------
    // Joint admission: memory capacity alone is not a safe gate. The model
    // predicts a full resource vector per batch, so the controller can also
    // budget CPU — and defer a batch that memory alone would happily admit.
    // ------------------------------------------------------------------
    println!("\nJoint memory + CPU admission (predictions from the same model):");
    let resources = model.predict_resources_many(&future, &batches).expect("resource prediction");
    let actual_resources: Vec<ResourceVector> = batches.iter().map(|w| w.y).collect();
    // Pick the two most CPU-hungry batches: both fit the memory budget
    // together, but the CPU budget only accommodates the first.
    let mut by_cpu: Vec<usize> = (0..resources.len()).collect();
    by_cpu.sort_by(|&a, &b| resources[b].cpu_ms.total_cmp(&resources[a].cpu_ms));
    let (first, second) = (by_cpu[0], by_cpu[1]);
    let mem_budget = (resources[first].memory_mb + resources[second].memory_mb) * 2.0;
    let cpu_budget = resources[first].cpu_ms + resources[second].cpu_ms * 0.5;

    let mut joint = AdmissionController::new(mem_budget).with_cpu_budget(cpu_budget);
    let mut memory_only = AdmissionController::new(mem_budget);
    for &i in &[first, second] {
        let joint_verdict = joint.offer_resources(resources[i], actual_resources[i]);
        let memory_verdict = memory_only.offer_resources(resources[i], actual_resources[i]);
        println!(
            "  batch {i:>3}: predicted {} | memory-only gate: {:?} | joint gate: {:?}{}",
            resources[i],
            memory_verdict,
            joint_verdict,
            joint
                .last_rejected_on()
                .map(|k| format!(" (deferred on {})", k.label()))
                .unwrap_or_default()
        );
    }
    assert!(
        joint.last_rejected_on() == Some(ResourceKind::Cpu),
        "the second batch must be deferred on CPU, not memory"
    );
    println!(
        "  -> the second batch fits the {mem_budget:.0} MB memory budget but would blow the \
         {cpu_budget:.1} ms CPU budget; only the joint gate defers it."
    );
}
