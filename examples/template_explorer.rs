//! Template explorer: a look inside the substrate — plan trees with
//! estimated/true cardinalities (the paper's Fig. 2), plan featurization, the
//! elbow method for choosing `k` (§III-B1), and what the learned templates
//! actually group together.
//!
//! ```sh
//! cargo run --release --example template_explorer
//! ```

use learnedwmp::core::{PlanKMeansTemplates, TemplateLearner};
use learnedwmp::mlkit::kmeans::{elbow_curve, pick_elbow};
use learnedwmp::mlkit::scaler::StandardScaler;
use learnedwmp::mlkit::Matrix;
use learnedwmp::plan::features::{feature_names, featurize_plan};
use learnedwmp::plan::Planner;
use learnedwmp::workloads::QueryRecord;

fn main() {
    // 1. One concrete query: SQL, plan tree, features (paper Fig. 2).
    let cat = learnedwmp::workloads::tpcds::catalog();
    let templates = learnedwmp::workloads::tpcds::templates();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let spec = learnedwmp::workloads::tpcds::instantiate(&cat, &templates[1], 0, &mut rng);
    println!("SQL:\n  {}\n", learnedwmp::plan::sql::render_sql(&spec));
    let planner = Planner::new(&cat);
    let plan = planner.plan(&spec).expect("plan");
    println!("Plan (estimated vs true cardinalities):\n{}", plan.explain());
    println!("Plan features (count, sum of estimated cardinality per operator type):");
    for (name, v) in feature_names().iter().zip(featurize_plan(&plan)) {
        if v != 0.0 {
            println!("  {name:<22} {v:>14.1}");
        }
    }

    // 2. The elbow method over a TPC-C-style log (cheap to cluster).
    println!("\nElbow method over a TPC-C-style log (1,500 statements):");
    let log = learnedwmp::workloads::tpcc::generate(1_500, 3).expect("generation");
    let rows: Vec<Vec<f64>> = log.records.iter().map(|r| r.features.clone()).collect();
    let x = Matrix::from_rows(&rows).expect("matrix");
    let xs = StandardScaler::new().fit_transform(&x).expect("scaling");
    let ks: Vec<usize> = (2..=24).step_by(2).collect();
    let curve = elbow_curve(&xs, &ks, 42).expect("elbow curve");
    for (k, inertia) in &curve {
        let bar = "#".repeat((inertia / curve[0].1 * 50.0) as usize);
        println!("  k={k:>2} inertia {inertia:>12.0} {bar}");
    }
    let k_star = pick_elbow(&curve).expect("elbow");
    println!("  -> elbow at k = {k_star} (the generator uses 12 statement templates)");

    // 3. What the learned templates group: cluster sizes and a sample SQL.
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let mut learner = PlanKMeansTemplates::new(k_star, 42);
    learner.fit(&refs, &log.catalog).expect("template learning");
    let mut members: Vec<Vec<&QueryRecord>> = vec![Vec::new(); learner.n_templates()];
    for r in &refs {
        members[learner.assign(r).expect("assign")].push(r);
    }
    println!("\nLearned templates (size, mean memory, example statement):");
    for (t, group) in members.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let mean_mem: f64 =
            group.iter().map(|r| r.true_memory_mb()).sum::<f64>() / group.len() as f64;
        let example = group[0].sql();
        let example = if example.len() > 72 { format!("{}…", &example[..72]) } else { example };
        println!("  t{t:<2} n={:<4} mem≈{mean_mem:>7.2} MB  {example}", group.len());
    }
}
