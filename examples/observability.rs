//! The observability layer end to end: metrics exposition, structured
//! tracing, and drift monitoring around a live serving engine.
//!
//! The example trains on an OLTP-heavy TPC-C phase (templates 0..6), boots
//! an [`Engine`] with observability and background retraining, serves the
//! in-distribution phase, then shifts the traffic to the heavy statement
//! mix (templates 6..12). Afterwards it renders the engine's metrics
//! registry as Prometheus text and JSON — non-zero serving counters,
//! scoring-latency quantiles, the rolling prediction MAE, and a
//! template-distribution drift gauge that moved with the shift — plus the
//! structured span/event log captured by a ring-buffer subscriber.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use learnedwmp::core::{
    LearnedWmp, LearnedWmpConfig, ModelKind, OnlinePolicy, OnlineWmp, PredictorHandle, TemplateSpec,
};
use learnedwmp::obs::{Level, RingBufferRecorder};
use learnedwmp::serve::{Engine, ObsConfig, WindowPolicy};
use learnedwmp::workloads::QueryLog;

const WINDOW: usize = 10;
const PHASE_LEN: usize = 600;

/// A TPC-C-style log drawn from one template range — the two calls below
/// give the "before" and "after" of a workload shift.
fn phase(templates: std::ops::Range<usize>, base: u64) -> QueryLog {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cat = learnedwmp::workloads::tpcc::catalog();
    let mut specs = Vec::new();
    for i in 0..PHASE_LEN {
        let mut rng = StdRng::seed_from_u64(base ^ i as u64);
        let t = templates.start + i % (templates.end - templates.start);
        specs.push((
            learnedwmp::workloads::tpcc::instantiate(&cat, t, base + i as u64, &mut rng),
            t,
        ));
    }
    learnedwmp::workloads::build_log("tpcc-shift", cat, specs).expect("log")
}

fn main() {
    // --- Capture structured tracing into a ring buffer. -------------------
    let recorder = Arc::new(RingBufferRecorder::with_capacity(512).min_level(Level::Info));
    learnedwmp::obs::set_subscriber(recorder.clone());

    // --- Train on phase 1 and fix the drift reference. --------------------
    println!("Training on the OLTP-heavy phase (templates 0..6)...");
    let phase1 = phase(0..6, 1_000);
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 12, seed: 7 })
        .fit(&phase1)
        .expect("training");
    let refs: Vec<_> = phase1.records.iter().collect();
    let reference = model.template_distribution(&refs).expect("reference distribution");

    // --- Boot the engine with observability + background retraining. ------
    let config = LearnedWmpConfig { model: ModelKind::Xgb, ..Default::default() };
    let policy = OnlinePolicy { retrain_every: 400, window: 1_200, k_templates: 12 };
    let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW))
        .with_observability(ObsConfig::default().with_drift_reference(reference))
        .with_retraining(OnlineWmp::new(config, policy), phase1.catalog.clone());

    // --- Serve phase 1 (in-distribution), then the shifted phase 2. -------
    let phase2 = phase(6..12, 9_000);
    for (name, log) in
        [("phase 1 (templates 0..6)", &phase1), ("phase 2 (templates 6..12)", &phase2)]
    {
        let tickets: Vec<_> = log.records.iter().map(|r| engine.submit(r.clone())).collect();
        for record in &log.records {
            engine.observe(record.clone());
        }
        engine.drain();
        for ticket in &tickets {
            ticket.wait().expect("decision");
        }
        let drift = engine
            .obs_registry()
            .and_then(|r| r.snapshot().get("wmp_template_drift_score", &[]).cloned())
            .and_then(|m| m.as_gauge())
            .unwrap_or(f64::NAN);
        println!("served {name}: {} queries, drift score {drift:.3}", log.len());
    }

    // Let the background retrainer drain: 1,200 observations at
    // retrain_every = 400 is up to three passes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while engine.stats().retrains + engine.stats().retrain_failures < 3
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // --- Exposition: the same registry, both renderers. -------------------
    let snapshot = engine.obs_registry().expect("observability is on").snapshot();
    println!("\n=== Prometheus exposition ===\n{}", snapshot.to_prometheus());
    println!("=== JSON snapshot ===\n{}", snapshot.to_json());

    // --- The structured event log the subscriber captured. ----------------
    learnedwmp::obs::clear_subscriber();
    println!("\n=== Structured events (model lifecycle) ===");
    for event in recorder.events() {
        if matches!(event.name, "model_swap" | "retrain" | "retrain_published" | "model_install") {
            println!("{}", event.to_json_line());
        }
    }
}
