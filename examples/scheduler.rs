//! Closed-loop multi-tenant scheduling: what workload prediction is *for*.
//!
//! A TPC-H-style arrival stream (100k+ queries in 10-query windows) is
//! replayed through a 4-executor cluster under three regimes:
//!
//! - **baseline** — no prediction: every window reserves the same nominal
//!   envelope (3× the mean window demand, the defensive constant an
//!   operator without a model must pick), placed first-fit;
//! - **prediction-aware** — reservations come from a serving engine's live
//!   LearnedWMP model (via `Engine::predict_now`) with 1.1× headroom,
//!   placed best-fit;
//! - **oracle** — reservations equal true demand (perfect information),
//!   the upper bound on what any predictor can achieve.
//!
//! Each run is costed identically: SLA penalties for windows that start
//! past their tenant's deadline plus stranded-capacity cost for reserved
//! memory reality never used. The example asserts the headline claim —
//! prediction-aware scheduling beats the no-prediction baseline on total
//! cost — and prints the full comparison.
//!
//! ```sh
//! cargo run --release --example scheduler
//! ```

use learnedwmp::core::{LearnedWmp, ModelKind, PredictorHandle, TemplateSpec};
use learnedwmp::plan::ResourceVector;
use learnedwmp::sched::{
    replay, BestFit, CostModel, DemandSource, FirstFit, PlacementPolicy, PredictionAware,
    ReplayConfig, ScheduleReport, Scheduler, SlaClass,
};
use learnedwmp::serve::{Engine, WindowPolicy};
use learnedwmp::sim::Cluster;
use learnedwmp::workloads::{ArrivalProcess, QueryRecord};

const WINDOW: usize = 10;
const N_QUERIES: usize = 110_000;
const TRAIN: usize = 20_000;

fn scheduler(policy: Box<dyn PlacementPolicy>) -> Scheduler {
    // 4 executors, each gated on memory and CPU; two SLA tiers (tenants
    // alternate): gold allows 1,000 ticks of queueing at penalty 10, bronze
    // 4,000 ticks at penalty 2.
    Scheduler::new(Cluster::uniform(4, ResourceVector::new(256.0, 8_000.0, f64::INFINITY)), policy)
        .with_sla_classes(vec![SlaClass::new(1_000, 10.0), SlaClass::new(4_000, 2.0)])
        .with_cost_model(CostModel { stranded_per_mb_tick: 1e-6 })
}

fn main() {
    println!("Generating a TPC-H-style history ({N_QUERIES} queries)...");
    let log = learnedwmp::workloads::tpch::generate(N_QUERIES, 7).expect("generation");
    let mean_window: ResourceVector = log
        .records
        .iter()
        .map(|r| r.resources)
        .sum::<ResourceVector>()
        .scale(WINDOW as f64 / log.len() as f64);
    println!("  mean window demand: {mean_window}");

    println!("Training LearnedWMP (Ridge over template histograms, {TRAIN} queries)...");
    let train: Vec<&QueryRecord> = log.records.iter().take(TRAIN).collect();
    let model = LearnedWmp::builder()
        .model(ModelKind::Ridge)
        .templates(TemplateSpec::PlanKMeans { k: 22, seed: 42 })
        .batch_size(WINDOW)
        .fit_refs(&train, &log.catalog)
        .expect("training");

    // The prediction-aware run reads its demand estimates from a resident
    // serving engine — the same hot-swappable handle a production gate
    // would consult — via the synchronous `predict_now` side channel.
    let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW));

    let config = ReplayConfig {
        window: WINDOW,
        arrivals: ArrivalProcess::Bursty {
            burst_gap_ticks: 120.0,
            idle_gap_ticks: 3_000.0,
            mean_burst_len: 40.0,
        },
        seed: 11,
    };

    // Without a model, an operator must provision every window for a high
    // percentile of demand; 3× the mean is the defensive constant.
    let nominal = mean_window.scale(3.0);

    println!("Replaying {} windows through each regime...\n", log.len().div_ceil(WINDOW));
    let runs: Vec<(&str, ScheduleReport)> = vec![
        (
            "baseline (no prediction)",
            replay(&log, DemandSource::Nominal(nominal), scheduler(Box::new(FirstFit)), &config)
                .expect("baseline replay"),
        ),
        (
            "prediction-aware (LearnedWMP)",
            replay(
                &log,
                DemandSource::Engine(&engine),
                scheduler(Box::new(PredictionAware::new(1.1))),
                &config,
            )
            .expect("prediction-aware replay"),
        ),
        (
            "oracle (true demand)",
            replay(&log, DemandSource::Oracle, scheduler(Box::new(BestFit)), &config)
                .expect("oracle replay"),
        ),
    ];

    for (name, report) in &runs {
        println!("== {name} ==");
        println!("{report}\n");
    }

    println!(
        "{:<32} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "regime", "SLA penalty", "stranded", "total cost", "util mem", "deferred"
    );
    for (name, r) in &runs {
        println!(
            "{:<32} {:>12.1} {:>12.1} {:>12.1} {:>9.0}% {:>8}",
            name,
            r.sla_penalty,
            r.stranded_cost,
            r.total_cost(),
            r.mean_utilization.memory_mb * 100.0,
            r.placed_deferred,
        );
    }

    let baseline = &runs[0].1;
    let aware = &runs[1].1;
    let oracle = &runs[2].1;
    assert!(
        aware.total_cost() < baseline.total_cost(),
        "prediction-aware scheduling must beat the no-prediction baseline \
         ({} vs {})",
        aware.total_cost(),
        baseline.total_cost(),
    );
    println!(
        "\nPrediction-aware total cost is {:.1}% of the no-prediction baseline \
         (oracle bound: {:.1}%).",
        100.0 * aware.total_cost() / baseline.total_cost(),
        100.0 * oracle.total_cost() / baseline.total_cost(),
    );
}
