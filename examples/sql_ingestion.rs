//! SQL text ingestion end to end: a TPC-H query log arrives as *SQL text*,
//! is parsed under a dialect and lowered against the catalog by the engine's
//! `SqlFrontend`, and every window of successfully parsed queries gets a
//! memory prediction — while malformed or unsupported statements are
//! rejected with typed, span-carrying errors and counted, never crashing
//! the service.
//!
//! ```sh
//! cargo run --release --example sql_ingestion
//! ```

use std::collections::BTreeMap;

use learnedwmp::core::{LearnedWmp, ModelKind, PredictorHandle, TemplateSpec};
use learnedwmp::serve::{Engine, ObsConfig, SqlFrontend, WindowPolicy};
use learnedwmp::sql::Ansi;

const WINDOW: usize = 10;
const BUCKET_MB: f64 = 25.0;

fn main() {
    // --- Train on a TPC-H-style history. ----------------------------------
    println!("Training on a TPC-H-style history (22 templates)...");
    let history = learnedwmp::workloads::tpch::generate(2_200, 3).expect("history");
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 22, seed: 3 })
        .fit(&history)
        .expect("training");

    // --- The serving-time traffic is a plain text log. --------------------
    // Render a fresh TPC-H log to SQL text and splice in the kind of lines a
    // real log scrape drags along: comments, blanks, DDL/DML, unsupported
    // shapes, and typos.
    let traffic = learnedwmp::workloads::tpch::generate(500, 77).expect("traffic");
    let mut lines: Vec<String> = vec!["-- tpch serving log, ANSI dialect".into()];
    for (i, record) in traffic.records.iter().enumerate() {
        lines.push(record.sql());
        if i % 100 == 50 {
            lines.push("DELETE FROM lineitem".into());
            lines.push("SELECT l.* FROM lineitem l WHERE l.l_quantity = 1 OR 1 = 1".into());
            lines.push("SELECT x.l_quantity FROM lineitme x".into());
        }
    }
    println!("Replaying {} log lines through Engine::submit_sql...\n", lines.len());

    // --- Boot an engine with a SQL front-end and observability. -----------
    let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW))
        .with_observability(ObsConfig::default())
        .with_sql_frontend(SqlFrontend::new(history.catalog.clone(), Box::new(Ansi)));

    let mut tickets = Vec::new();
    let mut rejections: BTreeMap<&'static str, usize> = BTreeMap::new();
    for line in lines.iter().filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with("--")) {
        match engine.submit_sql(line) {
            Ok(ticket) => tickets.push(ticket),
            Err(e) => {
                *rejections.entry(e.kind()).or_default() += 1;
                // The span points at the offending bytes of the source line.
                let shown = e.span().slice(line);
                if rejections.values().sum::<usize>() <= 3 {
                    println!("  rejected ({}): {e}", e.kind());
                    println!("    near: ...{shown}...");
                }
            }
        }
    }
    engine.drain();

    // --- Predicted memory buckets (the paper's discretized target). -------
    let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
    for ticket in &tickets {
        let decision = ticket.wait().expect("scored");
        *buckets.entry((decision.predicted_mb() / BUCKET_MB) as u64).or_default() += 1;
    }
    println!("\nPredicted window memory, {BUCKET_MB:.0} MB buckets (queries per bucket):");
    for (bucket, n) in &buckets {
        let lo = *bucket as f64 * BUCKET_MB;
        println!("  [{:>6.0}, {:>6.0}) MB : {:>4}  {}", lo, lo + BUCKET_MB, n, "#".repeat(n / 10));
    }

    // --- Parse counters: front-end view and exported metrics. -------------
    let front = engine.sql_frontend().expect("front-end attached");
    println!("\nParse counters:");
    println!("  accepted : {:>5}", front.parse_ok());
    println!("  rejected : {:>5}", front.parse_errors());
    for (kind, n) in &rejections {
        println!("    {kind:<20}: {n:>3}");
    }
    let exposition = engine.obs_registry().expect("registry").snapshot().to_prometheus();
    println!("\nExported metrics (grep wmp_sql):");
    for line in exposition.lines().filter(|l| l.starts_with("wmp_sql")) {
        println!("  {line}");
    }

    let stats = engine.stats();
    println!(
        "\nEngineStats: submitted {} / served {} / windows {}",
        stats.submitted, stats.served, stats.windows
    );
}
