//! Admission control (the paper's §I motivation): before a batch of queries
//! is admitted for concurrent execution, the DBMS must decide whether its
//! collective working memory fits the budget. Under-estimation admits batches
//! that overflow (spills, thrashing, failures); over-estimation leaves
//! capacity idle.
//!
//! Unseen JOB-style traffic is replayed through two serving engines — one
//! holding LearnedWMP, one holding the DBMS heuristic — and each window's
//! ticketed prediction drives a `wmp_sim::AdmissionController` gate; the
//! controllers tally both error types against the ground truth.
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```

use learnedwmp::core::{LearnedWmp, ModelKind, PredictorHandle, SingleWmpDbms, TemplateSpec};
use learnedwmp::serve::{Engine, WindowPolicy};
use learnedwmp::sim::{AdmissionController, AdmissionStats};
use learnedwmp::workloads::QueryRecord;

const WINDOW: usize = 10;

fn main() {
    println!("Generating a JOB-style history (2,300 queries)...");
    let log = learnedwmp::workloads::job::generate(2_300, 2).expect("generation");
    let (train_idx, test_idx) = log.train_test_split(0.8, 42);
    let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();

    let model = LearnedWmp::builder()
        .model(ModelKind::Rf)
        .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
        .fit_refs(&train, &log.catalog)
        .expect("training");

    // Two resident engines gate the same stream: same windowing, different
    // predictor behind the handle.
    let engines = [
        (
            "LearnedWMP-RF admission gate",
            Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW)),
        ),
        (
            "DBMS-heuristic admission gate",
            Engine::new(PredictorHandle::new(SingleWmpDbms), WindowPolicy::Count(WINDOW)),
        ),
    ];

    // Replay the unseen traffic through both engines, collecting each
    // window's ticketed decision next to its actual collective memory.
    let incoming = learnedwmp::workloads::QueryLog {
        benchmark: log.benchmark.clone(),
        catalog: log.catalog.clone(),
        records: test_idx.iter().map(|&i| log.records[i].clone()).collect(),
    };
    let mut windows: Vec<(f64, [f64; 2])> = Vec::new(); // (actual, predicted per gate)
    for chunk in incoming.replay(WINDOW) {
        if chunk.len() < WINDOW {
            break; // fixed-size windows, as in the paper's evaluation
        }
        let mut predicted = [0.0f64; 2];
        for (slot, (_, engine)) in engines.iter().enumerate() {
            let tickets: Vec<_> = chunk.iter().map(|r| engine.submit(r.clone())).collect();
            predicted[slot] = tickets[0].wait().expect("decision").predicted_mb();
        }
        let actual: f64 = chunk.iter().map(|r| r.true_memory_mb()).sum();
        windows.push((actual, predicted));
    }

    // Budget: 1.5x the median actual window demand — a deliberately tight
    // system where wrong predictions change decisions.
    let mut actuals: Vec<f64> = windows.iter().map(|(a, _)| *a).collect();
    actuals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let budget = actuals[actuals.len() / 2] * 1.5;
    println!("Working-memory budget per batch: {budget:.0} MB ({} windows)\n", windows.len());

    // Drive one closed-loop controller per gate on identical traffic; each
    // window is priced alone (complete before the next offer), so the
    // tallies isolate pure prediction quality.
    let mut tallies: Vec<AdmissionStats> = Vec::new();
    for slot in 0..engines.len() {
        let mut gate = AdmissionController::new(budget);
        for (actual, predicted) in &windows {
            gate.complete_oldest();
            gate.offer(predicted[slot], *actual);
        }
        tallies.push(gate.stats());
    }

    let report = |name: &str, t: &AdmissionStats| {
        let total = t.admitted + t.rejected;
        println!("{name}:");
        println!("  admitted & fit            : {:>3}", t.admitted - t.overflow_events);
        println!(
            "  admitted but OVERFLOWED   : {:>3}   <- memory pressure / failures",
            t.overflow_events
        );
        println!("  rejected although it fit  : {:>3}   <- wasted capacity", t.rejected_would_fit);
        println!("  rejected & would overflow : {:>3}", t.rejected - t.rejected_would_fit);
        println!("  wrong decisions           : {:>3}/{total}\n", t.wrong_decisions());
    };
    for ((name, engine), tally) in engines.iter().zip(&tallies) {
        report(name, tally);
        let stats = engine.stats();
        assert_eq!(stats.served, stats.submitted, "every submitted query was ticketed");
    }

    println!(
        "-> LearnedWMP makes {} wrong admission decisions vs the heuristic's {}.",
        tallies[0].wrong_decisions(),
        tallies[1].wrong_decisions()
    );
}
