//! Admission control (the paper's §I motivation): before a batch of queries
//! is admitted for concurrent execution, the DBMS must decide whether its
//! collective working memory fits the budget. Under-estimation admits batches
//! that overflow (spills, thrashing, failures); over-estimation leaves
//! capacity idle.
//!
//! The example replays unseen JOB-style batches through an admission gate
//! driven by (a) the DBMS heuristic and (b) LearnedWMP, counting both error
//! types against the ground truth.
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, ModelKind, SingleWmpDbms, TemplateSpec,
    WorkloadPredictor,
};
use learnedwmp::workloads::QueryRecord;

/// Outcome counts for one admission policy.
#[derive(Default)]
struct Tally {
    admitted_ok: usize,
    admitted_overflow: usize, // admitted but actually over budget (the bad one)
    rejected_wasteful: usize, // rejected although it would have fit
    rejected_ok: usize,
}

fn main() {
    println!("Generating a JOB-style history (2,300 queries)...");
    let log = learnedwmp::workloads::job::generate(2_300, 2).expect("generation");
    let (train_idx, test_idx) = log.train_test_split(0.8, 42);
    let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();
    let incoming: Vec<&QueryRecord> = test_idx.iter().map(|&i| &log.records[i]).collect();

    let model = LearnedWmp::builder()
        .model(ModelKind::Rf)
        .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
        .fit_refs(&train, &log.catalog)
        .expect("training");

    // Budget: the median actual batch demand — a deliberately tight system.
    let batches = batch_workloads(&incoming, 10, 5, LabelMode::Sum);
    let mut actuals: Vec<f64> = batches.iter().map(|w| w.y).collect();
    actuals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let budget = actuals[actuals.len() / 2] * 1.5;
    println!(
        "Working-memory budget per batch: {budget:.0} MB ({} incoming batches)\n",
        batches.len()
    );

    // Both gates answer through the same `WorkloadPredictor` trait.
    let gates: [(&dyn WorkloadPredictor, usize); 2] = [(&model, 0), (&SingleWmpDbms, 1)];
    let mut tallies = [Tally::default(), Tally::default()];
    for w in &batches {
        let qs: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| incoming[i]).collect();
        let fits = w.y <= budget;
        for (gate, slot) in gates {
            let admit = gate.predict_workload(&qs).expect("prediction") <= budget;
            let tally = &mut tallies[slot];
            match (admit, fits) {
                (true, true) => tally.admitted_ok += 1,
                (true, false) => tally.admitted_overflow += 1,
                (false, true) => tally.rejected_wasteful += 1,
                (false, false) => tally.rejected_ok += 1,
            }
        }
    }
    let [learned_tally, heuristic_tally] = tallies;

    let report = |name: &str, t: &Tally| {
        let total = t.admitted_ok + t.admitted_overflow + t.rejected_wasteful + t.rejected_ok;
        let wrong = t.admitted_overflow + t.rejected_wasteful;
        println!("{name}:");
        println!("  admitted & fit            : {:>3}", t.admitted_ok);
        println!(
            "  admitted but OVERFLOWED   : {:>3}   <- memory pressure / failures",
            t.admitted_overflow
        );
        println!("  rejected although it fit  : {:>3}   <- wasted capacity", t.rejected_wasteful);
        println!("  rejected & would overflow : {:>3}", t.rejected_ok);
        println!("  wrong decisions           : {:>3}/{total}\n", wrong);
    };
    report("LearnedWMP-RF admission gate", &learned_tally);
    report("DBMS-heuristic admission gate", &heuristic_tally);

    let l_wrong = learned_tally.admitted_overflow + learned_tally.rejected_wasteful;
    let h_wrong = heuristic_tally.admitted_overflow + heuristic_tally.rejected_wasteful;
    println!(
        "-> LearnedWMP makes {l_wrong} wrong admission decisions vs the heuristic's {h_wrong}."
    );
}
