//! The serving lifecycle end to end (paper §I "DBMS Integration"):
//! **submit → window → predict → observe → swap**.
//!
//! A resident `Engine` serves memory predictions for an unbounded query
//! stream from concurrent client threads, while executed queries stream
//! back into a background retrainer whose passes hot-swap the model without
//! pausing the service; a persisted artifact is also installed live via
//! `Engine::reload`. Every window's prediction then drives the sim crate's
//! closed-loop admission controller, so prediction quality shows up as
//! admission mistakes.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use learnedwmp::core::{
    LearnedWmp, LearnedWmpConfig, ModelKind, OnlinePolicy, OnlineWmp, PredictorHandle, TemplateSpec,
};
use learnedwmp::serve::{Engine, WindowPolicy};
use learnedwmp::sim::AdmissionController;

const WINDOW: usize = 10;
const CLIENTS: usize = 4;

fn main() {
    // --- Train & ship: the model a DBMS would load at startup. -----------
    println!("Training the initial model on a TPC-C-style history...");
    let history = learnedwmp::workloads::tpcc::generate(2_000, 3).expect("history");
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 20, seed: 3 })
        .fit(&history)
        .expect("training");
    let artifact = std::env::temp_dir().join("learnedwmp-serving-example.lwmp");
    model.save_to(&artifact).expect("save");

    // --- Boot the engine: shared handle + background retraining. ---------
    let config = LearnedWmpConfig { model: ModelKind::Xgb, ..Default::default() };
    let policy = OnlinePolicy { retrain_every: 1_000, window: 4_000, k_templates: 20 };
    let engine = Arc::new(
        Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW))
            .with_retraining(OnlineWmp::new(config, policy), history.catalog.clone()),
    );
    println!(
        "Engine up: window policy Count({WINDOW}), model v{}, {CLIENTS} client threads.\n",
        engine.handle().version()
    );

    // --- Serve: concurrent clients replay live traffic into the engine. --
    let traffic = learnedwmp::workloads::tpcc::generate(4_000, 77).expect("traffic");
    let chunks: Vec<_> = traffic.replay(traffic.len().div_ceil(CLIENTS)).collect();
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let clients: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut pending = Vec::new();
                    for record in *chunk {
                        // Submit for admission pricing; the ticket resolves
                        // when the window fills with this thread's and its
                        // peers' queries.
                        let ticket = engine.submit(record.clone());
                        // The query "executes"; its measured memory streams
                        // into the background retrainer.
                        engine.observe(record.clone());
                        pending.push((ticket, record.true_memory_mb()));
                    }
                    pending
                })
            })
            .collect();
        let pending: Vec<_> = clients.into_iter().flat_map(|c| c.join().expect("client")).collect();
        // Flush the final partial window so every ticket resolves.
        engine.drain();
        pending
            .into_iter()
            .map(|(ticket, actual_mb)| (ticket.wait().expect("decision"), actual_mb))
            .collect()
    });

    // --- Swap: a fresh artifact installs without stopping the service. ---
    let version = engine.reload(&artifact).expect("reload");
    println!("Hot-reloaded the persisted artifact as model v{version}.");

    // Let the background retrainer drain its queue: 4,000 observations at
    // retrain_every = 1,000 is four passes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while engine.stats().retrains + engine.stats().retrain_failures < 4
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // --- Close the loop: window predictions drive the admission gate. ----
    // Reassemble windows: every member ticket carries the same decision, so
    // group actual per-query memory by window id.
    let mut by_window: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for (decision, actual_mb) in &outcomes {
        let entry = by_window.entry(decision.window_id).or_insert((decision.predicted_mb(), 0.0));
        entry.1 += actual_mb;
    }
    // Budget ≈ 2.5 mean windows with 2 admitted at a time: a deliberately
    // tight system where prediction error changes decisions.
    let budget = 2.5 * by_window.values().map(|(p, _)| p).sum::<f64>() / by_window.len() as f64;
    let mut gate = AdmissionController::new(budget);
    for (predicted, actual) in by_window.values() {
        if gate.in_flight() >= 2 {
            gate.complete_oldest();
        }
        gate.offer(*predicted, *actual);
    }
    let admission = gate.stats();

    // --- Report. ----------------------------------------------------------
    let stats = engine.stats();
    println!("\nEngineStats after the session:");
    println!("  submitted            : {:>8}", stats.submitted);
    println!("  served               : {:>8}", stats.served);
    println!("  windows scored       : {:>8}", stats.windows);
    println!("  observed (retraining): {:>8}", stats.observed);
    println!("  retrain passes       : {:>8}", stats.retrains);
    println!("  model swaps          : {:>8}", stats.swaps);
    println!(
        "  scoring latency      : p50 {:>5} µs, p99 {:>5} µs",
        stats.p50_latency_us, stats.p99_latency_us
    );
    println!("  current model version: {:>8}", engine.handle().version());
    println!("\nClosed-loop admission (budget {budget:.0} MB, 2 windows in flight):");
    println!("  admitted  : {:>4}", admission.admitted);
    println!("  rejected  : {:>4}", admission.rejected);
    println!("  overflows : {:>4}", admission.overflow_events);
    println!("  stranded  : {:>4} (rejected but would have fit)", admission.rejected_would_fit);

    std::fs::remove_file(&artifact).ok();
}
