//! Quickstart: train a LearnedWMP model on an executed-query log and predict
//! the working-memory demand of an unseen workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, LearnedWmpConfig, ModelKind, PlanKMeansTemplates,
    SingleWmpDbms,
};
use learnedwmp::workloads::QueryRecord;

fn main() {
    // 1. An executed-query log. In a deployment this comes from the DBMS
    //    query log (statement + final plan + measured peak working memory);
    //    here the TPC-DS-style generator plays that role.
    println!("Generating a TPC-DS-style query log (9,900 queries)...");
    let log = learnedwmp::workloads::tpcds::generate(9_900, 1).expect("generation");
    let (train_idx, test_idx) = log.train_test_split(0.8, 42);
    let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();
    let test: Vec<&QueryRecord> = test_idx.iter().map(|&i| &log.records[i]).collect();
    println!("  {} training queries, {} test queries", train.len(), test.len());
    println!("  mean per-query peak memory: {:.1} MB", log.mean_true_memory_mb());

    // 2. Train: k-means templates over plan features (TR3), histogram
    //    construction (TR4-TR5), XGBoost-style distribution regressor (TR6).
    println!("\nTraining LearnedWMP-XGB with k = 100 templates, batch size s = 10...");
    let model = LearnedWmp::train(
        LearnedWmpConfig { model: ModelKind::Xgb, ..Default::default() },
        Box::new(PlanKMeansTemplates::new(100, 42)),
        &train,
        &log.catalog,
    )
    .expect("training");
    println!(
        "  templates learned in {:.0} ms, histograms in {:.0} ms, regressor fit in {:.0} ms",
        model.timings.template_ms, model.timings.histogram_ms, model.timings.fit_ms
    );
    println!("  model size: {:.1} kB", model.footprint_bytes() as f64 / 1024.0);

    // 3. Predict unseen workloads and compare against the actual collective
    //    memory and the DBMS optimizer's heuristic estimate.
    let workloads = batch_workloads(&test, 10, 7, LabelMode::Sum);
    let dbms = SingleWmpDbms;
    println!("\nFirst five unseen workloads (10 queries each):");
    println!("  {:>10} {:>12} {:>12} {:>12}", "workload", "actual MB", "LearnedWMP", "DBMS est.");
    for (i, w) in workloads.iter().take(5).enumerate() {
        let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&j| test[j]).collect();
        let pred = model.predict_workload(&queries).expect("prediction");
        let heur = dbms.predict_workload(&queries);
        println!("  {:>10} {:>12.1} {:>12.1} {:>12.1}", i, w.y, pred, heur);
    }

    // 4. Aggregate accuracy over all unseen workloads.
    let y: Vec<f64> = workloads.iter().map(|w| w.y).collect();
    let preds: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&j| test[j]).collect();
            model.predict_workload(&queries).expect("prediction")
        })
        .collect();
    let heur: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&j| test[j]).collect();
            dbms.predict_workload(&queries)
        })
        .collect();
    let rmse_model = learnedwmp::mlkit::metrics::rmse(&y, &preds).expect("rmse");
    let rmse_dbms = learnedwmp::mlkit::metrics::rmse(&y, &heur).expect("rmse");
    println!("\nRMSE over {} unseen workloads:", workloads.len());
    println!("  LearnedWMP-XGB : {rmse_model:>8.1} MB");
    println!("  DBMS heuristic : {rmse_dbms:>8.1} MB");
    println!(
        "  -> LearnedWMP reduces workload memory estimation error by {:.1}%",
        (1.0 - rmse_model / rmse_dbms) * 100.0
    );
}
