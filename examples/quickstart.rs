//! Quickstart: train a LearnedWMP model with the builder, persist it to a
//! versioned artifact, reload it (as a serving daemon would at startup), and
//! predict the working-memory demand of unseen workloads through the
//! `WorkloadPredictor` trait.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, ModelKind, SingleWmpDbms, TemplateSpec,
    WorkloadPredictor,
};
use learnedwmp::workloads::QueryRecord;

fn main() {
    // 1. An executed-query log. In a deployment this comes from the DBMS
    //    query log (statement + final plan + measured peak working memory);
    //    here the TPC-DS-style generator plays that role.
    println!("Generating a TPC-DS-style query log (9,900 queries)...");
    let log = learnedwmp::workloads::tpcds::generate(9_900, 1).expect("generation");
    let (train_idx, test_idx) = log.train_test_split(0.8, 42);
    let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();
    let test: Vec<&QueryRecord> = test_idx.iter().map(|&i| &log.records[i]).collect();
    println!("  {} training queries, {} test queries", train.len(), test.len());
    println!("  mean per-query peak memory: {:.1} MB", log.mean_true_memory_mb());

    // 2. Train through the builder: k-means templates over plan features
    //    (TR3), histogram construction (TR4-TR5), XGBoost-style distribution
    //    regressor (TR6). Hyper-parameters are validated before any work.
    println!("\nTraining LearnedWMP-XGB with k = 100 templates, batch size s = 10...");
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 100, seed: 42 })
        .batch_size(10)
        .fit_refs(&train, &log.catalog)
        .expect("training");
    println!(
        "  templates learned in {:.0} ms, histograms in {:.0} ms, regressor fit in {:.0} ms",
        model.timings.template_ms, model.timings.histogram_ms, model.timings.fit_ms
    );

    // 3. Persist the trained model and reload it — the paper's §I deployment
    //    story: train offline, ship the artifact into the DBMS, load at
    //    startup. The reloaded model predicts bit-identically.
    let path = std::env::temp_dir().join("learnedwmp-quickstart.lwmp");
    model.save_to(&path).expect("save");
    let artifact_kb = std::fs::metadata(&path).expect("metadata").len() as f64 / 1024.0;
    let served = LearnedWmp::load_from(&path).expect("load");
    println!("\nPersisted model: {} ({artifact_kb:.1} kB on disk)", path.display());

    // 4. Serve predictions through the uniform `WorkloadPredictor` trait —
    //    the reloaded model and the DBMS heuristic answer the same calls.
    let predictors: Vec<Box<dyn WorkloadPredictor>> =
        vec![Box::new(served), Box::new(SingleWmpDbms)];
    let workloads = batch_workloads(&test, 10, 7, LabelMode::Sum);
    println!("\nFirst five unseen workloads (10 queries each):");
    println!("  {:>10} {:>12} {:>12} {:>12}", "workload", "actual MB", "LearnedWMP", "DBMS est.");
    for (i, w) in workloads.iter().take(5).enumerate() {
        let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&j| test[j]).collect();
        let preds: Vec<f64> =
            predictors.iter().map(|p| p.predict_workload(&queries).expect("prediction")).collect();
        println!("  {:>10} {:>12.1} {:>12.1} {:>12.1}", i, w.y_mb(), preds[0], preds[1]);
    }

    // 5. Aggregate accuracy over all unseen workloads, via the batched
    //    fast path (each query is template-assigned exactly once).
    let y: Vec<f64> = workloads.iter().map(|w| w.y_mb()).collect();
    println!("\nRMSE over {} unseen workloads:", workloads.len());
    let mut rmses = Vec::new();
    for p in &predictors {
        let preds = p.predict_workloads(&test, &workloads).expect("prediction");
        let rmse = learnedwmp::mlkit::metrics::rmse(&y, &preds).expect("rmse");
        println!("  {:<16}: {rmse:>8.1} MB  (model size {:.1} kB)", p.name(), {
            p.footprint_bytes() as f64 / 1024.0
        });
        rmses.push(rmse);
    }
    println!(
        "  -> LearnedWMP reduces workload memory estimation error by {:.1}%",
        (1.0 - rmses[0] / rmses[1]) * 100.0
    );

    // 6. Go resident: the serving engine shares the model across request
    //    threads through a hot-swappable handle — submit a stream, get
    //    per-query tickets, and reload a new artifact with zero downtime.
    use learnedwmp::core::PredictorHandle;
    use learnedwmp::serve::{Engine, WindowPolicy};
    let engine = Engine::new(
        PredictorHandle::new(LearnedWmp::load_from(&path).expect("load")),
        WindowPolicy::Count(10),
    );
    let tickets: Vec<_> = test[..10].iter().map(|r| engine.submit((*r).clone())).collect();
    let decision = tickets[0].wait().expect("decision");
    println!(
        "\nServing engine: window of {} priced at {:.1} MB by model v{} \
         (p50 scoring latency {} µs)",
        decision.window_len,
        decision.predicted_mb(),
        decision.model_version,
        engine.stats().p50_latency_us
    );
    let v = engine.reload(&path).expect("hot reload");
    println!("Hot-reloaded the artifact as model v{v} without pausing readers.");
    std::fs::remove_file(&path).ok();
}
