//! Model persistence, end to end through the facade: save → load → predict
//! must be bit-for-bit deterministic for every `ModelKind`, and corrupted,
//! truncated, or version-mismatched artifacts must fail loudly — never load
//! as a silently wrong model.

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, ModelKind, TemplateSpec, WorkloadPredictor,
};
use learnedwmp::workloads::QueryRecord;

fn trained(kind: ModelKind, log: &learnedwmp::workloads::QueryLog) -> LearnedWmp {
    LearnedWmp::builder()
        .model(kind)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed: 42 })
        .fit(log)
        .unwrap_or_else(|e| panic!("{kind:?}: training failed: {e}"))
}

fn artifact_of(model: &LearnedWmp) -> Vec<u8> {
    let mut buf = Vec::new();
    model.save_to_writer(&mut buf).expect("save");
    buf
}

#[test]
fn save_load_predict_is_bit_identical_for_every_model_kind() {
    let log = learnedwmp::workloads::tpcc::generate(400, 11).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let workloads = batch_workloads(&refs, 10, 7, LabelMode::Sum);
    for kind in ModelKind::ALL {
        let model = trained(kind, &log);
        let bytes = artifact_of(&model);
        let reloaded = LearnedWmp::load_from_reader(&mut bytes.as_slice())
            .unwrap_or_else(|e| panic!("{kind:?}: load failed: {e}"));

        // Single-workload path.
        for chunk in refs.chunks(10).take(5) {
            assert_eq!(
                model.predict_workload(chunk).expect("orig").to_bits(),
                reloaded.predict_workload(chunk).expect("reloaded").to_bits(),
                "{kind:?}: single-workload prediction must be bit-identical"
            );
        }
        // Batched trait path.
        let a = WorkloadPredictor::predict_workloads(&model, &refs, &workloads).expect("orig");
        let b =
            WorkloadPredictor::predict_workloads(&reloaded, &refs, &workloads).expect("reloaded");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{kind:?}: batched prediction drifted");
        }
        // Metadata and size accounting survive too.
        assert_eq!(model.footprint_bytes(), reloaded.footprint_bytes(), "{kind:?}");
        assert_eq!(model.config().model, reloaded.config().model, "{kind:?}");
        assert_eq!(model.n_train_workloads, reloaded.n_train_workloads, "{kind:?}");
    }
}

#[test]
fn save_is_deterministic_per_model() {
    let log = learnedwmp::workloads::tpcc::generate(300, 5).expect("log");
    let model = trained(ModelKind::Xgb, &log);
    assert_eq!(artifact_of(&model), artifact_of(&model), "same model, same bytes");
}

#[test]
fn file_round_trip_via_paths() {
    let log = learnedwmp::workloads::tpcc::generate(300, 6).expect("log");
    let model = trained(ModelKind::Rf, &log);
    let path = std::env::temp_dir().join(format!("lwmp-test-{}.lwmp", std::process::id()));
    model.save_to(&path).expect("save_to");
    let reloaded = LearnedWmp::load_from(&path).expect("load_from");
    std::fs::remove_file(&path).ok();
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    assert_eq!(
        model.predict_workload(&refs[..10]).unwrap().to_bits(),
        reloaded.predict_workload(&refs[..10]).unwrap().to_bits()
    );
}

#[test]
fn version_mismatch_is_a_clear_error() {
    let log = learnedwmp::workloads::tpcc::generate(250, 2).expect("log");
    let mut bytes = artifact_of(&trained(ModelKind::Ridge, &log));
    // The format version lives at offset 4 (u16 LE). Version 3 does not
    // exist yet; versions 1 and 2 both load.
    bytes[4] = 3;
    bytes[5] = 0;
    let err = LearnedWmp::load_from_reader(&mut bytes.as_slice()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("version 3"), "error must name the found version: {msg}");
    assert!(msg.contains("1..=2"), "error must name the supported versions: {msg}");
}

/// Cross-version compatibility: a committed format-version-1 artifact
/// (trained before multi-resource targets existed, when plan features were
/// 20-wide and labels were scalar memory) must still load and predict the
/// exact bits it predicted at save time. The fixture was built from
/// `tpcc::generate(250, 3)` with Ridge and `PlanKMeans { k: 6, seed: 1 }`;
/// today's generator emits the same first 20 features (the 6 structural
/// features are appended after), so truncating regenerated records
/// reconstructs the fixture's inputs.
#[test]
fn version_1_fixture_still_loads_and_predicts_the_recorded_bits() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/learnedwmp_v1_ridge.lwmp");
    let model = LearnedWmp::load_from(&path).expect("v1 artifact must load");
    assert_eq!(model.config().model, ModelKind::Ridge);

    let log = learnedwmp::workloads::tpcc::generate(250, 3).expect("log");
    let mut records = log.records.clone();
    for r in &mut records {
        r.features.truncate(20);
    }
    let refs: Vec<&QueryRecord> = records.iter().collect();
    let pred = model.predict_workload(&refs[..10]).expect("predict");
    assert_eq!(
        pred.to_bits(),
        0x3fe4_b7a2_4e70_2334,
        "v1 artifact drifted: predicted {pred}, expected 0.6474162609093583"
    );

    // A v1 model is scalar: its resource vector is the memory projection.
    let r = model.predict_resources(&refs[..10]).expect("resources");
    assert_eq!(r.memory_mb.to_bits(), pred.to_bits());
    assert_eq!(r.cpu_ms, 0.0);
    assert_eq!(r.io_pages, 0.0);
}

#[test]
fn corrupted_bytes_are_rejected_everywhere() {
    let log = learnedwmp::workloads::tpcc::generate(250, 3).expect("log");
    let bytes = artifact_of(&trained(ModelKind::Dt, &log));
    // Flip one byte at a spread of offsets (header, config, payloads,
    // checksum): every corruption must error, never load silently.
    let step = (bytes.len() / 13).max(1);
    for offset in (0..bytes.len()).step_by(step) {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x55;
        assert!(
            LearnedWmp::load_from_reader(&mut bad.as_slice()).is_err(),
            "flipping byte {offset} of {} must not load",
            bytes.len()
        );
    }
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let log = learnedwmp::workloads::tpcc::generate(250, 4).expect("log");
    let bytes = artifact_of(&trained(ModelKind::Dnn, &log));
    let step = (bytes.len() / 17).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        assert!(
            LearnedWmp::load_from_reader(&mut &bytes[..cut]).is_err(),
            "a {cut}-byte prefix of {} must not load",
            bytes.len()
        );
    }
}

#[test]
fn garbage_and_empty_inputs_are_rejected() {
    assert!(LearnedWmp::load_from_reader(&mut [].as_slice()).is_err());
    assert!(LearnedWmp::load_from_reader(&mut [0u8; 64].as_slice()).is_err());
    let err = LearnedWmp::load_from_reader(&mut b"not a model file at all".as_slice());
    assert!(err.is_err());
}
