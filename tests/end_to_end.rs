//! End-to-end integration: generate → plan → simulate → template → histogram
//! → train → predict across all three benchmarks and every learner family.

use learnedwmp::core::{EvalConfig, EvalContext, ExperimentConfig, ModelKind};
use learnedwmp::workloads::QueryLog;

fn quick_eval_config(k: usize) -> EvalConfig {
    EvalConfig { k_templates: k, ..EvalConfig::default() }
}

fn generate_quick() -> (QueryLog, QueryLog, QueryLog) {
    let cfg = ExperimentConfig::quick();
    (
        learnedwmp::workloads::tpcds::generate(cfg.tpcds.n_queries, 1).expect("tpcds"),
        learnedwmp::workloads::job::generate(cfg.job.n_queries, 2).expect("job"),
        learnedwmp::workloads::tpcc::generate(cfg.tpcc.n_queries, 3).expect("tpcc"),
    )
}

#[test]
fn full_sweep_runs_on_every_benchmark() {
    let (tpcds, job, tpcc) = generate_quick();
    for (log, k) in [(&tpcds, 20), (&job, 20), (&tpcc, 10)] {
        let ctx = EvalContext::new(log, quick_eval_config(k));
        let reports = ctx.evaluate_all(&[ModelKind::Ridge, ModelKind::Xgb]).expect("sweep");
        assert_eq!(reports.len(), 5, "DBMS + 2 single + 2 learned");
        for r in &reports {
            assert!(r.rmse.is_finite() && r.rmse >= 0.0, "{}: rmse {}", r.tag(), r.rmse);
            assert!(r.mape.is_finite() && r.mape >= 0.0);
            assert_eq!(r.residuals.len(), ctx.test_workloads.len());
        }
    }
}

#[test]
fn ml_models_beat_the_dbms_heuristic_on_tpcc() {
    // TPC-C is the most deterministic benchmark: the ML advantage must be
    // large and stable even at the quick scale.
    let log = learnedwmp::workloads::tpcc::generate(1_500, 3).expect("tpcc");
    let ctx = EvalContext::new(&log, quick_eval_config(12));
    let dbms = ctx.evaluate_dbms().expect("dbms");
    for kind in [ModelKind::Ridge, ModelKind::Dt, ModelKind::Xgb] {
        let learned = ctx.evaluate_learned(kind).expect("learned");
        let single = ctx.evaluate_single(kind).expect("single");
        assert!(
            learned.rmse < dbms.rmse / 2.0,
            "LearnedWMP-{kind} rmse {} vs DBMS {}",
            learned.rmse,
            dbms.rmse
        );
        assert!(
            single.rmse < dbms.rmse / 2.0,
            "SingleWMP-{kind} rmse {} vs DBMS {}",
            single.rmse,
            dbms.rmse
        );
    }
}

#[test]
fn every_model_kind_works_end_to_end() {
    let log = learnedwmp::workloads::tpcc::generate(800, 5).expect("tpcc");
    let ctx = EvalContext::new(&log, quick_eval_config(10));
    for kind in ModelKind::ALL {
        let learned = ctx.evaluate_learned(kind).expect("learned");
        assert!(learned.rmse.is_finite(), "LearnedWMP-{kind}");
        assert!(learned.model_kb > 0.0);
        assert!(learned.train_ms > 0.0);
    }
}

#[test]
fn learned_training_is_faster_than_single_for_tree_models() {
    // The s× training-row reduction must show up in wall-clock for the
    // nontrivial learners (the paper's Fig. 6; Ridge is the documented
    // exception and excluded here).
    let log = learnedwmp::workloads::tpcc::generate(3_000, 7).expect("tpcc");
    let ctx = EvalContext::new(&log, quick_eval_config(12));
    for kind in [ModelKind::Xgb, ModelKind::Rf] {
        let learned = ctx.evaluate_learned(kind).expect("learned");
        let single = ctx.evaluate_single(kind).expect("single");
        assert!(
            learned.train_ms < single.train_ms,
            "{kind}: learned {} ms vs single {} ms",
            learned.train_ms,
            single.train_ms
        );
    }
}

#[test]
fn histogram_dimension_matches_template_count() {
    use learnedwmp::core::{build_histogram, HistogramMode, PlanKMeansTemplates, TemplateLearner};
    let log = learnedwmp::workloads::job::generate(400, 2).expect("job");
    let refs: Vec<_> = log.records.iter().collect();
    let mut learner = PlanKMeansTemplates::new(15, 42);
    learner.fit(&refs, &log.catalog).expect("fit");
    let assigns: Vec<usize> =
        refs[..10].iter().map(|r| learner.assign(r).expect("assign")).collect();
    let h =
        build_histogram(&assigns, learner.n_templates(), HistogramMode::Counts).expect("histogram");
    assert_eq!(h.len(), 15);
    assert_eq!(h.iter().sum::<f64>(), 10.0, "paper eq. 8: sum of counts = s");
}

#[test]
fn workload_prediction_is_consistent_with_members() {
    // SingleWMP workload prediction must equal the sum of member predictions
    // (paper eq. 11), checked through the public facade.
    use learnedwmp::core::SingleWmp;
    let log = learnedwmp::workloads::tpcc::generate(600, 9).expect("tpcc");
    let refs: Vec<_> = log.records.iter().collect();
    let model = SingleWmp::train(ModelKind::Dt, &refs).expect("train");
    let total = model.predict_workload(&refs[..7]).expect("workload");
    let by_parts: f64 = refs[..7].iter().map(|r| model.predict_query(r).expect("query")).sum();
    assert!((total - by_parts).abs() < 1e-9);
}
