//! Property-based integration tests: random logical queries against the
//! TPC-DS catalog must always plan, simulate to positive memory, and
//! featurize to the fixed layout; core numeric invariants hold for arbitrary
//! inputs.

use proptest::prelude::*;

use learnedwmp::core::{build_histogram, HistogramMode};
use learnedwmp::mlkit::metrics::{mape, quantile, rmse, ResidualSummary};
use learnedwmp::plan::features::{featurize_plan, N_PLAN_FEATURES};
use learnedwmp::plan::query::{AggFunc, Aggregate, JoinEdge, Predicate, QuerySpec, TableRef};
use learnedwmp::plan::{OpKind, Planner};
use learnedwmp::sim::{DbmsHeuristicEstimator, ExecutorSimulator};

/// Strategy: a random star query over the TPC-DS catalog — `store_sales`
/// joined to a subset of dimensions, with random predicates/aggregation.
fn arb_star_query() -> impl Strategy<Value = QuerySpec> {
    let dims = prop::collection::vec(0usize..3, 0..3);
    (dims, 0.0001f64..0.9, any::<bool>(), any::<bool>(), 0u64..1000).prop_map(
        |(dim_ids, sel, group, order, id)| {
            let dim_defs = [
                ("date_dim", "d", "ss_sold_date_sk", "d_date_sk", "d_year"),
                ("item", "i", "ss_item_sk", "i_item_sk", "i_category"),
                ("customer", "c", "ss_customer_sk", "c_customer_sk", "c_birth_country"),
            ];
            let mut tables = vec![TableRef::new("store_sales", "ss")];
            let mut joins = Vec::new();
            let mut predicates = Vec::new();
            let mut group_by = Vec::new();
            let mut uniq: Vec<usize> = dim_ids;
            uniq.sort_unstable();
            uniq.dedup();
            for &d in &uniq {
                let (table, alias, fk, pk, attr) = dim_defs[d];
                tables.push(TableRef::new(table, alias));
                joins.push(JoinEdge {
                    left_alias: "ss".into(),
                    left_col: fk.into(),
                    right_alias: alias.into(),
                    right_col: pk.into(),
                });
                predicates.push(Predicate {
                    table_alias: alias.into(),
                    column: attr.into(),
                    op: learnedwmp::plan::query::CmpOp::Eq,
                    literal: "'x'".into(),
                    sel_est: sel,
                    sel_true: (sel * 1.5).min(1.0),
                });
                if group {
                    group_by.push((alias.to_string(), attr.to_string()));
                }
            }
            let aggregates = vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "ss".into(),
                column: "ss_net_profit".into(),
            }];
            let order_by = if order && !group_by.is_empty() { group_by.clone() } else { vec![] };
            QuerySpec {
                id,
                tables,
                joins,
                predicates,
                group_by,
                aggregates,
                order_by,
                ..Default::default()
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_star_queries_plan_simulate_and_featurize(spec in arb_star_query()) {
        let cat = learnedwmp::workloads::tpcds::catalog();
        let planner = Planner::new(&cat);
        let plan = planner.plan(&spec).expect("star queries must plan");
        // Features have the fixed layout and scan counts match the tables.
        let features = featurize_plan(&plan);
        prop_assert_eq!(features.len(), N_PLAN_FEATURES);
        let scans = plan.count_kind(OpKind::TableScan) + plan.count_kind(OpKind::IndexScan);
        prop_assert_eq!(scans, spec.tables.len());
        // Simulated memory is positive, finite, and the heuristic is too.
        let sim = ExecutorSimulator::new();
        let mem = sim.peak_memory_mb(&plan, spec.id);
        prop_assert!(mem.is_finite() && mem > 0.0);
        let est = DbmsHeuristicEstimator::new().estimate_mb(&plan);
        prop_assert!(est.is_finite() && est > 0.0);
        // Cardinalities never go negative anywhere in the plan.
        for node in plan.iter() {
            prop_assert!(node.est_rows >= 0.0);
            prop_assert!(node.true_rows >= 0.0);
        }
    }

    #[test]
    fn memory_grows_with_true_cardinality(scale in 1.0f64..50.0) {
        // Scaling every true cardinality up cannot reduce simulated memory.
        let cat = learnedwmp::workloads::tpcds::catalog();
        let templates = learnedwmp::workloads::tpcds::templates();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let spec = learnedwmp::workloads::tpcds::instantiate(&cat, &templates[5], 1, &mut rng);
        let planner = Planner::new(&cat);
        let base = planner.plan(&spec).expect("plan");
        let mut scaled = base.clone();
        fn scale_truths(n: &mut learnedwmp::plan::PlanNode, s: f64) {
            n.true_rows *= s;
            for c in &mut n.children {
                scale_truths(c, s);
            }
        }
        scale_truths(&mut scaled, scale);
        let sim = ExecutorSimulator::new();
        prop_assert!(sim.profile(&scaled).peak >= sim.profile(&base).peak);
    }

    #[test]
    fn histogram_counts_partition_assignments(
        assigns in prop::collection::vec(0usize..12, 1..40)
    ) {
        let h = build_histogram(&assigns, 12, HistogramMode::Counts).unwrap();
        prop_assert_eq!(h.iter().sum::<f64>() as usize, assigns.len());
        let hf = build_histogram(&assigns, 12, HistogramMode::Frequencies).unwrap();
        prop_assert!((hf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_and_mape_are_nonnegative_and_zero_iff_exact(
        y in prop::collection::vec(1.0f64..1e6, 1..50)
    ) {
        prop_assert!(rmse(&y, &y).expect("rmse") < 1e-12);
        prop_assert!(mape(&y, &y).expect("mape") < 1e-12);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        prop_assert!(rmse(&y, &shifted).expect("rmse") > 0.0);
    }

    #[test]
    fn residual_summary_orders_quantiles(
        res in prop::collection::vec(-1e6f64..1e6, 2..200)
    ) {
        let s = ResidualSummary::from_residuals(&res).expect("summary");
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        v in prop::collection::vec(-1e5f64..1e5, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&v, lo).expect("lo") <= quantile(&v, hi).expect("hi"));
    }
}
