//! Reproducibility: the whole stack — generation, planning, simulation,
//! template learning, training, prediction — is deterministic in its seeds.

use learnedwmp::core::{EvalConfig, EvalContext, LearnedWmp, ModelKind, TemplateSpec};
use learnedwmp::workloads::QueryRecord;

#[test]
fn generation_is_bit_identical_across_runs() {
    for (name, a, b) in [
        (
            "tpcds",
            learnedwmp::workloads::tpcds::generate(300, 7).expect("a"),
            learnedwmp::workloads::tpcds::generate(300, 7).expect("b"),
        ),
        (
            "job",
            learnedwmp::workloads::job::generate(300, 7).expect("a"),
            learnedwmp::workloads::job::generate(300, 7).expect("b"),
        ),
        (
            "tpcc",
            learnedwmp::workloads::tpcc::generate(300, 7).expect("a"),
            learnedwmp::workloads::tpcc::generate(300, 7).expect("b"),
        ),
    ] {
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.features, rb.features, "{name} features");
            assert_eq!(ra.true_memory_mb(), rb.true_memory_mb(), "{name} labels");
            assert_eq!(ra.dbms_estimate_mb(), rb.dbms_estimate_mb(), "{name} estimates");
            assert_eq!(ra.sql(), rb.sql(), "{name} sql");
        }
    }
}

#[test]
fn different_seeds_change_the_corpus() {
    let a = learnedwmp::workloads::tpcds::generate(200, 1).expect("a");
    let b = learnedwmp::workloads::tpcds::generate(200, 2).expect("b");
    let identical =
        a.records.iter().zip(&b.records).all(|(x, y)| x.true_memory_mb() == y.true_memory_mb());
    assert!(!identical);
}

#[test]
fn trained_models_predict_identically_for_fixed_seeds() {
    let log = learnedwmp::workloads::tpcc::generate(800, 3).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let train = |seed: u64| {
        LearnedWmp::builder()
            .model(ModelKind::Xgb)
            .seed(seed)
            .templates(TemplateSpec::PlanKMeans { k: 10, seed })
            .fit(&log)
            .expect("training")
    };
    let m1 = train(42);
    let m2 = train(42);
    for chunk in refs.chunks(10).take(5) {
        assert_eq!(
            m1.predict_workload(chunk).expect("p1"),
            m2.predict_workload(chunk).expect("p2")
        );
    }
}

#[test]
fn evaluation_reports_are_reproducible() {
    let log = learnedwmp::workloads::job::generate(500, 2).expect("log");
    let cfg = EvalConfig { k_templates: 15, ..Default::default() };
    let r1 = EvalContext::new(&log, cfg.clone()).evaluate_learned(ModelKind::Dt).expect("r1");
    let r2 = EvalContext::new(&log, cfg).evaluate_learned(ModelKind::Dt).expect("r2");
    assert_eq!(r1.rmse, r2.rmse);
    assert_eq!(r1.mape, r2.mape);
    assert_eq!(r1.residuals, r2.residuals);
}

#[test]
fn split_seed_controls_the_partition() {
    let log = learnedwmp::workloads::tpcc::generate(500, 3).expect("log");
    let (a_train, _) = log.train_test_split(0.8, 1);
    let (b_train, _) = log.train_test_split(0.8, 1);
    let (c_train, _) = log.train_test_split(0.8, 2);
    assert_eq!(a_train, b_train);
    assert_ne!(a_train, c_train);
}
