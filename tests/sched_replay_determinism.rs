//! Replay determinism: the scheduler runs in pure virtual time from seeded
//! inputs, so the same (log seed, arrival seed, policy, demand source) must
//! produce a **bit-identical** `ScheduleReport` — every counter and every
//! `f64` accumulator, compared with `==`, no tolerance.

use learnedwmp::core::{LearnedWmp, ModelKind, TemplateSpec};
use learnedwmp::plan::ResourceVector;
use learnedwmp::sched::{
    replay, BestFit, CostModel, DemandSource, FirstFit, PlacementPolicy, PredictionAware,
    ReplayConfig, ScheduleReport, Scheduler, SlaClass,
};
use learnedwmp::sim::Cluster;
use learnedwmp::workloads::ArrivalProcess;

type PolicyFactory = fn() -> Box<dyn PlacementPolicy>;

fn scheduler(policy: Box<dyn PlacementPolicy>) -> Scheduler {
    Scheduler::new(Cluster::uniform(4, ResourceVector::new(256.0, 8_000.0, f64::INFINITY)), policy)
        .with_sla_classes(vec![SlaClass::new(1_000, 10.0), SlaClass::new(4_000, 2.0)])
        .with_cost_model(CostModel { stranded_per_mb_tick: 1e-5 })
}

fn config(seed: u64) -> ReplayConfig {
    ReplayConfig {
        window: 10,
        arrivals: ArrivalProcess::Bursty {
            burst_gap_ticks: 40.0,
            idle_gap_ticks: 2_000.0,
            mean_burst_len: 12.0,
        },
        seed,
    }
}

#[test]
fn same_seed_and_policy_reproduce_bit_identical_reports() {
    let log = learnedwmp::workloads::tpch::generate(1_200, 21).unwrap();
    let sources: Vec<(&str, PolicyFactory)> = vec![
        ("first-fit", || Box::new(FirstFit)),
        ("best-fit", || Box::new(BestFit)),
        ("prediction-aware", || Box::new(PredictionAware::new(1.15))),
    ];
    for (name, make_policy) in sources {
        let run = |seed: u64| -> ScheduleReport {
            replay(&log, DemandSource::Oracle, scheduler(make_policy()), &config(seed)).unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b, "{name}: same seed must be bit-identical");
        assert_eq!(a.policy, name);
        let c = run(6);
        assert_ne!(
            (a.makespan_ticks, a.total_deferral_ticks),
            (c.makespan_ticks, c.total_deferral_ticks),
            "{name}: a different arrival seed must actually change the run"
        );
    }
}

#[test]
fn predictor_demand_source_is_deterministic_too() {
    // A trained model is itself deterministic in its seed, so predicted
    // replays inherit the bit-identical guarantee end to end.
    let log = learnedwmp::workloads::tpch::generate(1_000, 33).unwrap();
    let model = LearnedWmp::builder()
        .model(ModelKind::Ridge)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed: 3 })
        .batch_size(10)
        .fit(&log)
        .unwrap();
    let run = || {
        replay(
            &log,
            DemandSource::Predictor(&model),
            scheduler(Box::new(PredictionAware::new(1.1))),
            &config(17),
        )
        .unwrap()
    };
    let a = run();
    assert_eq!(a, run());
    assert_eq!(a.demand_source, "predicted");
    assert_eq!(a.placed() + a.rejected, a.workloads);
}
