//! Concurrency suite for the serving layer: ≥4 reader threads predicting
//! through one [`PredictorHandle`] while a writer hot-swaps models, plus
//! engine stats reconciliation under multi-threaded submission.
//!
//! The coherence argument: model A and model B predict *different* values
//! for the same probe workload, and each swap installs a codec round-trip
//! clone (bit-exact). If a reader ever observed a torn model — pieces of A's
//! templates with B's regressor, or a half-installed swap — its prediction
//! would (with overwhelming probability) match neither reference value
//! bit-for-bit, and the snapshot's version would disagree with the value.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use learnedwmp::core::{LearnedWmp, ModelKind, PredictorHandle, TemplateSpec};
use learnedwmp::serve::{Engine, WindowPolicy};
use learnedwmp::workloads::{QueryLog, QueryRecord};

const READERS: usize = 4;
const SWAPS: usize = 40;

fn train(log: &QueryLog, kind: ModelKind, seed: u64) -> LearnedWmp {
    LearnedWmp::builder()
        .model(kind)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed })
        .fit(log)
        .expect("training")
}

#[test]
fn concurrent_readers_never_observe_a_torn_model_during_hot_swap() {
    let log = learnedwmp::workloads::tpcc::generate(500, 11).expect("log");
    let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();

    let a = train(&log, ModelKind::Ridge, 1);
    let b = train(&log, ModelKind::Xgb, 2);
    let pa = a.predict_workload(&probe).expect("a");
    let pb = b.predict_workload(&probe).expect("b");
    assert_ne!(pa.to_bits(), pb.to_bits(), "the two models must be distinguishable");

    // Version parity encodes which model is installed: even = A, odd = B
    // (version 0 is the initial A; swap i installs B, A, B, ... in turn).
    let handle = PredictorHandle::new(a.codec_clone().expect("clone"));
    let writer_done = AtomicBool::new(false);
    let predictions = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(scope.spawn(|| {
                let mut seen_versions = 0u64;
                while !writer_done.load(Ordering::Acquire) {
                    let snapshot = handle.snapshot();
                    let version = snapshot.version();
                    let got = snapshot.predict_workload(&probe).expect("prediction");
                    let expected = if version.is_multiple_of(2) { pa } else { pb };
                    assert_eq!(
                        got.to_bits(),
                        expected.to_bits(),
                        "snapshot v{version} answered with the wrong model: \
                         got {got}, expected {expected} (pa={pa}, pb={pb})"
                    );
                    seen_versions = seen_versions.max(version);
                    predictions.fetch_add(1, Ordering::Relaxed);
                }
                seen_versions
            }));
        }

        for i in 0..SWAPS {
            // Swap i (1-based version i+1): odd versions carry B, even A.
            let next = if i % 2 == 0 {
                b.codec_clone().expect("clone")
            } else {
                a.codec_clone().expect("clone")
            };
            let outcome = handle.swap(next);
            assert_eq!(outcome.previous.version(), i as u64, "swaps publish in order");
            assert_eq!(outcome.version, i as u64 + 1);
        }
        writer_done.store(true, Ordering::Release);

        let max_seen = readers.into_iter().map(|r| r.join().expect("reader")).max().unwrap();
        assert!(max_seen <= SWAPS as u64, "no reader saw a version that was never published");
    });

    assert_eq!(handle.version(), SWAPS as u64);
    assert_eq!(handle.swap_count(), SWAPS as u64);
    assert!(
        predictions.load(Ordering::Relaxed) >= READERS as u64,
        "every reader predicted at least once"
    );
}

#[test]
fn pinned_snapshots_survive_many_swaps_unchanged() {
    let log = learnedwmp::workloads::tpcc::generate(300, 12).expect("log");
    let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
    let a = train(&log, ModelKind::Ridge, 3);
    let pa = a.predict_workload(&probe).expect("a");
    let handle = PredictorHandle::new(a);
    let pinned = handle.snapshot();
    let b = train(&log, ModelKind::Dt, 4);
    for _ in 0..10 {
        handle.swap(b.codec_clone().expect("clone"));
    }
    // The pinned snapshot still serves the original model bit-exactly.
    assert_eq!(pinned.version(), 0);
    assert_eq!(pinned.predict_workload(&probe).expect("pinned").to_bits(), pa.to_bits());
    assert_eq!(handle.version(), 10);
}

#[test]
fn engine_stats_reconcile_under_concurrent_submission_and_swapping() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 200;
    const WINDOW: usize = 10;

    let log = learnedwmp::workloads::tpcc::generate(PER_THREAD, 13).expect("log");
    let model = train(&log, ModelKind::Ridge, 5);
    let alt = train(&log, ModelKind::Xgb, 6);
    let engine = Arc::new(Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW)));

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let engine = Arc::clone(&engine);
            let records = &log.records;
            scope.spawn(move || {
                let tickets: Vec<_> = records.iter().map(|r| engine.submit(r.clone())).collect();
                for t in tickets {
                    let d = t.wait().expect("prediction");
                    assert!(d.predicted_mb().is_finite());
                    assert!(d.window_len >= 1 && d.window_len <= WINDOW);
                }
            });
        }
        // A writer hot-swaps while the submitters hammer the engine.
        let engine = Arc::clone(&engine);
        scope.spawn(move || {
            for _ in 0..5 {
                engine.install(alt.codec_clone().expect("clone"));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });
    engine.drain();

    let stats = engine.stats();
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.served, total, "every ticket resolved successfully");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.resolved(), stats.submitted, "counters reconcile");
    assert_eq!(stats.windows, total / WINDOW as u64, "800 submissions in windows of 10");
    assert_eq!(stats.swaps, 5);
    assert_eq!(engine.handle().version(), 5);
}

#[test]
fn engine_serves_through_the_facade_reexport() {
    // The serving API is reachable as `learnedwmp::serve` and composes with
    // the sim crate's closed-loop admission scenario.
    use learnedwmp::sim::AdmissionController;

    let log = learnedwmp::workloads::tpcc::generate(200, 14).expect("log");
    let model = train(&log, ModelKind::Ridge, 7);
    let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));

    let mut gate = AdmissionController::new(f64::INFINITY);
    for chunk in log.replay(10) {
        let tickets: Vec<_> = chunk.iter().map(|r| engine.submit(r.clone())).collect();
        let decision = tickets[0].wait().expect("decision");
        let actual: f64 = chunk.iter().map(|r| r.true_memory_mb()).sum();
        assert!(gate.offer(decision.predicted_mb(), actual).admitted());
        gate.complete_oldest();
    }
    assert_eq!(gate.stats().admitted, 20);
    assert_eq!(engine.stats().windows, 20);
}
