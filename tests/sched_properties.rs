//! Scheduler safety properties over randomized workload logs:
//!
//! 1. **Capacity invariant** — no placement policy ever pushes an
//!    executor's *reserved* occupancy past its `ResourceVector` capacity on
//!    any gated axis, at any point during a run.
//! 2. **Conservation** — every submitted workload ends in exactly one
//!    outcome: placed at arrival, deferred-then-placed, or rejected; the
//!    deferral queue fully drains.
//!
//! Both hold for *every* policy by construction (the scheduler re-checks
//! placements through `Executor::try_admit`), and the property tests
//! enforce that the construction actually delivers across first-fit,
//! best-fit, and prediction-aware placement on randomized arrival
//! sequences, demands, and cluster shapes.

use learnedwmp::plan::ResourceVector;
use learnedwmp::sched::{
    BestFit, FirstFit, PlacementPolicy, PredictionAware, Scheduler, SlaClass, Submitted,
    WorkloadRequest,
};
use learnedwmp::sim::Cluster;
use proptest::prelude::*;

/// One randomized workload: (arrival gap, duration, decision MB, decision
/// CPU ms, actual MB, actual CPU ms). Decision and actual are drawn
/// independently so both over- and under-prediction occur.
type RawWorkload = (u64, u64, f64, f64, f64, f64);

fn arb_workloads() -> impl Strategy<Value = Vec<RawWorkload>> {
    prop::collection::vec(
        (0u64..40, 1u64..60, 1.0f64..160.0, 0.0f64..900.0, 1.0f64..160.0, 0.0f64..900.0),
        1..80,
    )
}

fn policies() -> Vec<Box<dyn PlacementPolicy>> {
    vec![Box::new(FirstFit), Box::new(BestFit), Box::new(PredictionAware::new(1.25))]
}

/// Runs `raw` through a fresh scheduler per policy, asserting the capacity
/// invariant after every submission and conservation at the end.
fn check_policies(raw: &[RawWorkload], executors: usize, capacity: ResourceVector) {
    for policy in policies() {
        let name = policy.name();
        let mut sched = Scheduler::new(Cluster::uniform(executors, capacity), policy)
            .with_sla_classes(vec![SlaClass::new(50, 5.0), SlaClass::new(500, 1.0)]);
        let mut arrival = 0u64;
        let mut outcomes = [0usize; 3]; // placed, deferred, rejected
        for (i, &(gap, duration, dec_mb, dec_cpu, act_mb, act_cpu)) in raw.iter().enumerate() {
            arrival += gap;
            let outcome = sched.submit(WorkloadRequest {
                id: i as u64,
                tenant: i,
                arrival,
                duration,
                decision: ResourceVector::new(dec_mb, dec_cpu, 0.0),
                actual: ResourceVector::new(act_mb, act_cpu, 0.0),
                queries: 1,
            });
            match outcome {
                Submitted::Placed(_) => outcomes[0] += 1,
                Submitted::Deferred => outcomes[1] += 1,
                Submitted::Rejected => outcomes[2] += 1,
            }
            assert_reserved_within_capacity(sched.cluster(), name);
        }
        let report = sched.run_to_completion();
        assert_reserved_within_capacity(sched.cluster(), name);
        // Conservation: exactly one terminal outcome per workload.
        assert_eq!(report.workloads, raw.len(), "{name}: every submission counted");
        assert_eq!(
            report.placed() + report.rejected,
            report.workloads,
            "{name}: placed + rejected covers all workloads"
        );
        assert_eq!(sched.queue_depth(), 0, "{name}: deferral queue fully drained");
        assert_eq!(report.placed_direct, outcomes[0], "{name}: direct placements");
        assert_eq!(report.rejected, outcomes[2], "{name}: rejections decided at submit");
        // Deferred submissions were all eventually placed (never re-rejected).
        assert_eq!(report.placed_deferred, outcomes[1], "{name}: deferred all placed");
        assert_eq!(
            sched.cluster().total_running(),
            0,
            "{name}: run_to_completion leaves no residue"
        );
    }
}

fn assert_reserved_within_capacity(cluster: &Cluster, policy: &str) {
    for (i, executor) in cluster.executors().iter().enumerate() {
        let reserved = executor.reserved();
        let capacity = executor.capacity();
        for kind in learnedwmp::plan::ResourceKind::ALL {
            if capacity.get(kind).is_finite() {
                assert!(
                    reserved.get(kind) <= capacity.get(kind) + 1e-9,
                    "{policy}: executor {i} reserved {} > capacity {} on {}",
                    reserved.get(kind),
                    capacity.get(kind),
                    kind.label(),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_policy_exceeds_capacity_and_every_workload_is_accounted(
        raw in arb_workloads(),
        executors in 1usize..5,
    ) {
        // Joint memory+CPU gating: demands near the top of the draw range
        // can never fit (⇒ rejections exercised), most fit only serially
        // (⇒ deferrals exercised).
        check_policies(&raw, executors, ResourceVector::new(200.0, 1_000.0, f64::INFINITY));
    }

    #[test]
    fn memory_only_budgets_hold_the_same_invariants(
        raw in arb_workloads(),
    ) {
        check_policies(&raw, 2, ResourceVector::new(150.0, f64::INFINITY, f64::INFINITY));
    }
}
