//! End-to-end observability: one serving lifecycle — submit → observe →
//! retrain → swap — watched from the outside through both telemetry
//! pillars at once. A [`RingBufferRecorder`] captures the structured
//! spans/events the engine, retrainer, and handle emit, and the engine's
//! metrics registry is asserted against the exact traffic that was served.
//!
//! The whole lifecycle lives in a single `#[test]` because the tracing
//! subscriber is process-global; a second test in this binary would race
//! on `set_subscriber`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use learnedwmp::core::{
    LearnedWmp, LearnedWmpConfig, ModelKind, OnlinePolicy, OnlineWmp, PredictorHandle, TemplateSpec,
};
use learnedwmp::obs::{Level, RingBufferRecorder};
use learnedwmp::serve::{Engine, ObsConfig, WindowPolicy};

const WINDOW: usize = 10;
const N_QUERIES: usize = 200;

#[test]
fn serving_lifecycle_emits_spans_events_and_metrics() {
    let recorder = Arc::new(RingBufferRecorder::with_capacity(4096));
    learnedwmp::obs::set_subscriber(recorder.clone());

    let log = learnedwmp::workloads::tpcc::generate(N_QUERIES, 17).expect("log");
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed: 17 })
        .fit(&log)
        .expect("training");
    let refs: Vec<_> = log.records.iter().collect();
    let reference = model.template_distribution(&refs).expect("reference");

    // Retrain after N_QUERIES observations so feeding the log back through
    // `observe` triggers exactly one background pass and one swap.
    let config = LearnedWmpConfig { model: ModelKind::Xgb, ..Default::default() };
    let policy = OnlinePolicy { retrain_every: N_QUERIES, window: N_QUERIES, k_templates: 8 };
    let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(WINDOW))
        .with_observability(ObsConfig::default().with_drift_reference(reference))
        .with_retraining(OnlineWmp::new(config, policy), log.catalog.clone());

    // Submit → observe the whole log; every ticket must resolve.
    let tickets: Vec<_> = log.records.iter().map(|r| engine.submit(r.clone())).collect();
    for record in &log.records {
        engine.observe(record.clone());
    }
    engine.drain();
    for ticket in &tickets {
        ticket.wait().expect("decision");
    }

    // Wait for the single retrain pass to publish its swap.
    let deadline = Instant::now() + Duration::from_secs(120);
    while engine.stats().retrains + engine.stats().retrain_failures < 1 && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = engine.stats();
    assert_eq!(stats.retrains, 1, "one retrain pass must publish");
    assert_eq!(stats.retrain_failures, 0);
    assert_eq!(stats.swaps, 1);
    learnedwmp::obs::clear_subscriber();

    // --- Metrics: the registry reflects the exact traffic served. --------
    let snapshot = engine.obs_registry().expect("observability is on").snapshot();
    let counter = |name: &str| {
        snapshot.get(name, &[]).and_then(|m| m.as_counter()).unwrap_or_else(|| panic!("{name}"))
    };
    let gauge = |name: &str| {
        snapshot.get(name, &[]).and_then(|m| m.as_gauge()).unwrap_or_else(|| panic!("{name}"))
    };
    assert_eq!(counter("wmp_queries_submitted_total"), N_QUERIES as u64);
    assert_eq!(counter("wmp_queries_served_total"), N_QUERIES as u64);
    assert_eq!(counter("wmp_queries_failed_total"), 0);
    assert_eq!(counter("wmp_windows_scored_total"), (N_QUERIES / WINDOW) as u64);
    assert_eq!(counter("wmp_queries_observed_total"), N_QUERIES as u64);
    assert_eq!(counter("wmp_retrains_total"), 1);
    assert_eq!(counter("wmp_model_swaps_total"), 1);
    let latency = snapshot
        .get("wmp_window_score_latency_us", &[])
        .and_then(|m| m.as_histogram())
        .expect("latency histogram");
    assert_eq!(latency.count, (N_QUERIES / WINDOW) as u64);
    assert!(gauge("wmp_prediction_mae_mb").is_finite());
    assert!(gauge("wmp_prediction_mae_cpu_ms").is_finite());
    assert!(gauge("wmp_prediction_mae_io_pages").is_finite());
    let drift = gauge("wmp_template_drift_score");
    assert!((0.0..=1.0).contains(&drift), "drift {drift} out of range");
    assert_eq!(gauge("wmp_pending_queries"), 0.0);

    // --- Tracing: the lifecycle left a coherent structured record. -------
    let events = recorder.events();
    let named = |name: &str| events.iter().filter(|e| e.name == name).collect::<Vec<_>>();

    // Every scored window closed a Debug-level `score_window` span with a
    // measured duration and the window's population.
    let scored = named("score_window");
    assert_eq!(scored.len(), N_QUERIES / WINDOW);
    assert!(scored.iter().all(|e| e.level == Level::Debug && e.duration_us.is_some()));
    assert!(scored
        .iter()
        .all(|e| e.field("window_len").and_then(|v| v.as_u64()) == Some(WINDOW as u64)));

    // The retrain pass: an Info span from the online learner...
    let retrains = named("retrain");
    assert_eq!(retrains.len(), 1);
    assert!(retrains[0].duration_us.is_some(), "retrain is a span, not a bare event");
    assert_eq!(retrains[0].field("window_len").and_then(|v| v.as_u64()), Some(N_QUERIES as u64));

    // ...then the handle's swap, versioned and aged...
    let swaps = named("model_swap");
    assert_eq!(swaps.len(), 1);
    assert_eq!(swaps[0].field("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(swaps[0].field("previous_version").and_then(|v| v.as_u64()), Some(0));

    // ...and the engine's publication event, in causal order.
    let published = named("retrain_published");
    assert_eq!(published.len(), 1);
    assert_eq!(published[0].field("version").and_then(|v| v.as_u64()), Some(1));
    let pos = |name: &str| events.iter().position(|e| e.name == name).unwrap();
    assert!(pos("retrain") < pos("model_swap"));
    assert!(pos("model_swap") < pos("retrain_published"));
}
