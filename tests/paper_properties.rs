//! Paper-level invariants: properties §II–§IV assert about the method, tested
//! against the real pipeline rather than units in isolation.

use learnedwmp::core::{
    batch_workloads, EvalConfig, EvalContext, LabelMode, LearnedWmp, ModelKind,
    PlanKMeansTemplates, TemplateLearner, TemplateSpec,
};
use learnedwmp::workloads::QueryRecord;

/// Paper §IV-C / Fig. 11: batching improves relative accuracy — MAPE at
/// s = 10 must clearly beat MAPE at s = 1 for LearnedWMP.
#[test]
fn batching_improves_learnedwmp_accuracy() {
    let log = learnedwmp::workloads::tpcds::generate(6_000, 1).expect("log");
    let mape_at = |s: usize| {
        let ctx = EvalContext::new(
            &log,
            EvalConfig { batch_size: s, k_templates: 60, ..Default::default() },
        );
        ctx.evaluate_learned(ModelKind::Xgb).expect("eval").mape
    };
    let m1 = mape_at(1);
    let m10 = mape_at(10);
    assert!(m10 < m1 * 0.8, "MAPE s=10 ({m10:.1}) must beat s=1 ({m1:.1})");
}

/// Paper §IV-C: at batch size 1, SingleWMP beats LearnedWMP (templates
/// quantize away per-query signal).
#[test]
fn single_query_models_win_at_batch_size_one() {
    let log = learnedwmp::workloads::tpcds::generate(6_000, 1).expect("log");
    let ctx =
        EvalContext::new(&log, EvalConfig { batch_size: 1, k_templates: 60, ..Default::default() });
    let learned = ctx.evaluate_learned(ModelKind::Xgb).expect("learned");
    let single = ctx.evaluate_single(ModelKind::Xgb).expect("single");
    assert!(
        single.mape < learned.mape,
        "single {:.1}% must beat learned {:.1}% at s=1",
        single.mape,
        learned.mape
    );
}

/// Paper §II: the workload histogram is a distribution — it sums to the
/// batch size regardless of template count or workload composition.
#[test]
fn histograms_always_sum_to_batch_size() {
    use learnedwmp::core::{build_histogram, HistogramMode};
    let log = learnedwmp::workloads::job::generate(600, 2).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    for k in [5, 20, 50] {
        let mut learner = PlanKMeansTemplates::new(k, 42);
        learner.fit(&refs, &log.catalog).expect("fit");
        for chunk in refs.chunks(10).take(8) {
            let assigns: Vec<usize> =
                chunk.iter().map(|r| learner.assign(r).expect("assign")).collect();
            let h = build_histogram(&assigns, learner.n_templates(), HistogramMode::Counts)
                .expect("histogram");
            assert_eq!(h.iter().sum::<f64>() as usize, chunk.len());
        }
    }
}

/// Paper §III-B1 intuition: queries grouped into the same template have more
/// similar memory than the corpus at large (within-template variance is
/// smaller than the global variance).
#[test]
fn templates_group_queries_of_similar_memory() {
    let log = learnedwmp::workloads::tpcds::generate(3_000, 1).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let mut learner = PlanKMeansTemplates::new(60, 42);
    learner.fit(&refs, &log.catalog).expect("fit");
    let global_mean: f64 = refs.iter().map(|r| r.true_memory_mb()).sum::<f64>() / refs.len() as f64;
    let global_var: f64 =
        refs.iter().map(|r| (r.true_memory_mb() - global_mean).powi(2)).sum::<f64>()
            / refs.len() as f64;
    let mut groups: Vec<Vec<f64>> = vec![Vec::new(); learner.n_templates()];
    for r in &refs {
        groups[learner.assign(r).expect("assign")].push(r.true_memory_mb());
    }
    let mut within = 0.0;
    for g in groups.iter().filter(|g| !g.is_empty()) {
        let m = g.iter().sum::<f64>() / g.len() as f64;
        within += g.iter().map(|v| (v - m) * (v - m)).sum::<f64>();
    }
    within /= refs.len() as f64;
    assert!(
        within < global_var * 0.5,
        "within-template variance {within:.0} vs global {global_var:.0}"
    );
}

/// The label mode matters: sum labels are at least max labels, strictly
/// larger for any workload with two nonzero-memory queries.
#[test]
fn sum_labels_dominate_max_labels() {
    let log = learnedwmp::workloads::tpcc::generate(400, 3).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let sums = batch_workloads(&refs, 10, 1, LabelMode::Sum);
    let maxes = batch_workloads(&refs, 10, 1, LabelMode::Max);
    for (s, m) in sums.iter().zip(&maxes) {
        assert_eq!(s.query_indices, m.query_indices, "same partition, different labels");
        assert!(s.y_mb() > m.y_mb(), "sum {} must exceed max {}", s.y_mb(), m.y_mb());
    }
}

/// Fig. 8's Ridge exception: the LearnedWMP-Ridge model (k coefficients) is
/// larger than the SingleWMP-Ridge model (plan-feature coefficients) when
/// k exceeds the plan-feature dimension.
#[test]
fn ridge_size_exception_holds() {
    let log = learnedwmp::workloads::tpcc::generate(1_200, 3).expect("log");
    let ctx = EvalContext::new(
        &log,
        EvalConfig { k_templates: 40, ..Default::default() }, // 40 > 20 plan features
    );
    let learned = ctx.evaluate_learned(ModelKind::Ridge).expect("learned");
    let single = ctx.evaluate_single(ModelKind::Ridge).expect("single");
    assert!(
        learned.model_kb > single.model_kb,
        "LearnedWMP-Ridge ({}) must exceed SingleWMP-Ridge ({})",
        learned.model_kb,
        single.model_kb
    );
}

/// LearnedWMP inference issues one model call per workload instead of `s`:
/// the architectural mechanism behind the paper's Fig. 7 acceleration.
#[test]
fn learned_inference_makes_one_call_per_workload() {
    // Verified behaviorally: predictions depend only on the histogram, so
    // permuting queries inside a workload cannot change the prediction.
    let log = learnedwmp::workloads::tpcc::generate(600, 9).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let model = LearnedWmp::builder()
        .model(ModelKind::Dt)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed: 42 })
        .fit(&log)
        .expect("training");
    let workload: Vec<&QueryRecord> = refs[..10].to_vec();
    let mut reversed = workload.clone();
    reversed.reverse();
    assert_eq!(
        model.predict_workload(&workload).expect("fwd"),
        model.predict_workload(&reversed).expect("rev"),
        "prediction is permutation-invariant (pure distribution regression)"
    );
}
