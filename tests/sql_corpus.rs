//! Negative-path corpus for the SQL front-end: malformed and unsupported
//! statements must be rejected with *typed* [`ParseError`]s carrying byte
//! spans into the source — and must never panic, under any dialect, even on
//! arbitrarily truncated input. A resident serving engine parses untrusted
//! log text; rejection is a result, not a crash.

use learnedwmp::sql::{all_dialects, parse, parse_to_spec, Ansi};

/// Statements that fail in the tokenizer or parser (no catalog involved),
/// with the expected error kind.
const SYNTAX_CORPUS: &[(&str, &str)] = &[
    ("", "unexpected_end"),
    ("   \t\n", "unexpected_end"),
    ("SELECT", "unexpected_end"),
    ("UPDATE t SET a = 1", "unexpected_token"),
    ("INSERT INTO t VALUES (1)", "unexpected_token"),
    ("DELETE FROM t", "unexpected_token"),
    ("SELECT , FROM t", "unexpected_token"),
    ("SELECT t.a FROM t WHERE", "unexpected_end"),
    ("SELECT t.a FROM t WHERE t.a >", "unexpected_end"),
    ("SELECT t.a FROM t WHERE t.a BETWEEN 1", "unexpected_end"),
    ("SELECT t.a FROM t WHERE t.a IN", "unexpected_end"),
    ("SELECT t.a FROM t GROUP BY", "unexpected_end"),
    ("SELECT t.a FROM t ORDER t.a", "unexpected_token"),
    ("SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2", "unsupported"),
    ("SELECT t.a FROM t WHERE NOT t.a = 1", "unsupported"),
    ("SELECT t.a FROM t WHERE t.a IS NULL", "unsupported"),
    ("SELECT t.a FROM t WHERE EXISTS (SELECT u.b FROM u)", "unsupported"),
    ("SELECT t.a FROM t WHERE t.a IN (SELECT u.b FROM u)", "unsupported"),
    ("SELECT t.a FROM (SELECT u.b FROM u) t", "unsupported"),
    ("SELECT t.a FROM t LEFT JOIN u ON t.a = u.a", "unsupported"),
    ("SELECT t.a FROM t FULL OUTER JOIN u ON t.a = u.a", "unsupported"),
    ("SELECT t.a FROM t HAVING t.a > 1", "unsupported"),
    ("SELECT t.a FROM t LIMIT 10 OFFSET 5", "unsupported"),
    ("SELECT DISTINCT COUNT(DISTINCT t.a) FROM t", "unsupported"),
    ("SELECT t.a FROM t CROSS JOIN u ON t.a = u.a", "unexpected_token"),
    ("SELECT t.a FROM t LIMIT 99999999999999999999999", "invalid_number"),
    ("SELECT t.a FROM t WHERE t.a = 'unterminated", "unterminated_string"),
    ("SELECT t.a FROM t WHERE t.a = 1 ; SELECT u.b FROM u", "trailing_input"),
    ("SELECT t.a FROM t extra nonsense", "trailing_input"),
    ("SELECT t.a FROM t WHERE t.a @ 1", "unexpected_char"),
];

#[test]
fn syntax_corpus_yields_typed_errors_with_real_spans() {
    for dialect in all_dialects() {
        for (sql, want_kind) in SYNTAX_CORPUS {
            let err = parse(sql, dialect)
                .err()
                .unwrap_or_else(|| panic!("[{}] {sql:?} should be rejected", dialect.name()));
            assert_eq!(err.kind(), *want_kind, "[{}] {sql:?} rejected as {err}", dialect.name());
            let span = err.span();
            assert!(span.start <= span.end, "[{}] {sql:?}: inverted span", dialect.name());
            assert!(
                span.end <= sql.len().max(1),
                "[{}] {sql:?}: span {span:?} exceeds input",
                dialect.name()
            );
            // Errors render without panicking and name their kind.
            assert!(!err.to_string().is_empty());
        }
    }
}

#[test]
fn spans_point_at_the_offending_bytes() {
    let sql = "SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2";
    let err = parse(sql, &Ansi).unwrap_err();
    assert_eq!(err.span().slice(sql), "OR", "span selects the unsupported token");

    let sql = "SELECT t.a FROM t extra nonsense";
    let err = parse(sql, &Ansi).unwrap_err();
    assert_eq!(err.span().slice(sql), "nonsense", "trailing-input span lands on the remainder");
}

#[test]
fn lowering_corpus_yields_typed_catalog_errors() {
    let cat = learnedwmp::workloads::tpch::catalog();
    let cases: &[(&str, &str)] = &[
        ("SELECT t.x FROM no_such_table t", "unknown_table"),
        ("SELECT l.no_such_col FROM lineitem l WHERE l.no_such_col = 1", "unknown_column"),
        ("SELECT z.l_quantity FROM lineitem l WHERE z.l_quantity = 1", "unknown_alias"),
        ("SELECT l.* FROM lineitem l, orders l WHERE l.l_quantity = 1", "duplicate_alias"),
    ];
    for (sql, want_kind) in cases {
        let err = parse_to_spec(sql, &Ansi, &cat)
            .err()
            .unwrap_or_else(|| panic!("{sql:?} should be rejected"));
        assert_eq!(err.kind(), *want_kind, "{sql:?} rejected as {err}");
    }
}

#[test]
fn truncated_input_never_panics() {
    let cat = learnedwmp::workloads::tpch::catalog();
    let full = "SELECT l.l_returnflag, SUM(l.l_quantity), COUNT(*) FROM lineitem AS l, \
                orders o WHERE l.l_orderkey = o.o_orderkey AND l.l_shipdate BETWEEN 10 AND 20 \
                AND l.l_shipmode IN ('AIR', 'MAIL') AND o.o_orderpriority LIKE '%high%' \
                GROUP BY l.l_returnflag ORDER BY l.l_returnflag FETCH FIRST 100 ROWS ONLY";
    for dialect in all_dialects() {
        for end in 0..=full.len() {
            if !full.is_char_boundary(end) {
                continue;
            }
            // Every prefix either parses or returns a typed error; the full
            // text must parse and lower.
            let result = parse_to_spec(&full[..end], dialect, &cat);
            if end == full.len() {
                result.unwrap_or_else(|e| {
                    panic!("[{}] full statement should lower: {e}", dialect.name())
                });
            }
        }
    }
}

#[test]
fn garbage_bytes_never_panic() {
    // Deterministic pseudo-garbage over a hostile alphabet (quotes, escapes,
    // multi-byte chars, operators) — the tokenizer must always return.
    let alphabet: Vec<char> =
        "SELECT from\"'`$?;().,*<>=!_- \n\u{e9}\u{4e16}0123456789".chars().collect();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    for len in 0..200 {
        let mut s = String::new();
        for _ in 0..len {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let idx = (state >> 33) as usize % alphabet.len();
            s.push(alphabet[idx]);
        }
        for dialect in all_dialects() {
            let _ = parse(&s, dialect);
        }
    }
}
