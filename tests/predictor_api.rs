//! The redesigned public API, exercised through the facade: builder
//! training with validation, the uniform `WorkloadPredictor` serving
//! surface, the batched fast path, and warm-starting the online loop from a
//! persisted artifact.

use learnedwmp::core::{
    batch_workloads, LabelMode, LearnedWmp, LearnedWmpConfig, ModelKind, OnlinePolicy, OnlineWmp,
    RetrainOutcome, SingleWmp, SingleWmpDbms, TemplateSpec, WorkloadPredictor,
};
use learnedwmp::workloads::QueryRecord;

#[test]
fn a_serving_daemon_shape_holds_every_family_behind_one_trait() {
    let log = learnedwmp::workloads::tpcc::generate(500, 7).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let learned = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 10, seed: 42 })
        .fit(&log)
        .expect("learned");
    let single = SingleWmp::train(ModelKind::Xgb, &refs).expect("single");

    let fleet: Vec<Box<dyn WorkloadPredictor>> =
        vec![Box::new(learned), Box::new(single), Box::new(SingleWmpDbms)];
    let workloads = batch_workloads(&refs, 10, 1, LabelMode::Sum);
    for p in &fleet {
        let preds = p.predict_workloads(&refs, &workloads).expect("batched");
        assert_eq!(preds.len(), workloads.len(), "{}", p.name());
        assert!(preds.iter().all(|v| v.is_finite() && *v > 0.0), "{}", p.name());
    }
    let names: Vec<String> = fleet.iter().map(|p| p.name()).collect();
    assert_eq!(names, ["LearnedWMP-XGB", "SingleWMP-XGB", "SingleWMP-DBMS"]);
}

#[test]
fn builder_validates_before_any_training_work() {
    let log = learnedwmp::workloads::tpcc::generate(60, 1).expect("log");
    assert!(LearnedWmp::builder().batch_size(0).fit(&log).is_err());
    assert!(LearnedWmp::builder()
        .templates(TemplateSpec::PlanKMeans { k: 0, seed: 1 })
        .fit(&log)
        .is_err());
    assert!(LearnedWmp::builder()
        .templates(TemplateSpec::Dbscan { eps: -1.0, min_pts: 3 })
        .fit(&log)
        .is_err());
}

#[test]
fn batched_fast_path_agrees_with_per_workload_calls() {
    let log = learnedwmp::workloads::job::generate(500, 3).expect("log");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let model = LearnedWmp::builder()
        .model(ModelKind::Rf)
        .templates(TemplateSpec::PlanKMeans { k: 12, seed: 9 })
        .fit(&log)
        .expect("training");
    // Overlapping batches: the memoized assignments must not leak between
    // differently-composed workloads.
    let mut workloads = batch_workloads(&refs, 10, 1, LabelMode::Sum);
    workloads.extend(batch_workloads(&refs, 10, 2, LabelMode::Sum));
    let batched = model.predict_workloads(&refs, &workloads).expect("batched");
    for (w, b) in workloads.iter().zip(&batched) {
        let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| refs[i]).collect();
        assert_eq!(
            model.predict_workload(&queries).expect("single").to_bits(),
            b.to_bits(),
            "fast path must be bit-identical to the per-workload path"
        );
    }
}

#[test]
fn online_loop_warm_starts_from_a_shipped_artifact() {
    let history = learnedwmp::workloads::tpcc::generate(600, 21).expect("history");
    let offline = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 10, seed: 2 })
        .fit(&history)
        .expect("offline training");
    let mut artifact = Vec::new();
    offline.save_to_writer(&mut artifact).expect("save");

    // A fresh process: load the artifact and seed the online loop — it can
    // predict immediately, before observing a single query.
    let shipped = LearnedWmp::load_from_reader(&mut artifact.as_slice()).expect("load");
    let mut online = OnlineWmp::new(
        LearnedWmpConfig::default(),
        OnlinePolicy { retrain_every: 200, window: 2_000, k_templates: 10 },
    );
    online.warm_start(shipped);
    let probe: Vec<&QueryRecord> = history.records[..10].iter().collect();
    assert_eq!(
        online.predict_workload(&probe).expect("warm prediction").to_bits(),
        offline.predict_workload(&probe).expect("offline prediction").to_bits(),
        "a warm-started loop serves the shipped model verbatim"
    );

    // The loop keeps learning: enough new observations trigger a retrain
    // with a typed outcome.
    let fresh = learnedwmp::workloads::tpcc::generate(200, 33).expect("fresh");
    let mut outcomes = Vec::new();
    for r in &fresh.records {
        outcomes.push(online.observe(r.clone(), &fresh.catalog).expect("observe"));
    }
    assert_eq!(outcomes.iter().filter(|o| o.retrained()).count(), 1);
    assert!(matches!(outcomes.last(), Some(RetrainOutcome::Retrained { pass: 1, .. })));
    assert_eq!(online.retrain_count(), 1);
    assert!(online.predict_workload(&probe).expect("post-retrain") > 0.0);
}

#[test]
fn online_predictor_also_serves_through_the_trait() {
    let log = learnedwmp::workloads::tpcc::generate(300, 8).expect("log");
    let model = LearnedWmp::builder()
        .model(ModelKind::Ridge)
        .templates(TemplateSpec::PlanKMeans { k: 8, seed: 4 })
        .fit(&log)
        .expect("training");
    let mut online = OnlineWmp::new(LearnedWmpConfig::default(), OnlinePolicy::default());
    let cold: &dyn WorkloadPredictor = &online;
    assert_eq!(cold.name(), "OnlineWMP-untrained");
    assert_eq!(cold.footprint_bytes(), 0);
    online.warm_start(model);
    let warm: &dyn WorkloadPredictor = &online;
    assert_eq!(warm.name(), "OnlineLearnedWMP-Ridge");
    assert!(warm.footprint_bytes() > 0);
    let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
    assert!(warm.predict_workload(&probe).expect("prediction") > 0.0);
}
