//! Workspace-wiring smoke test: every learner family trains end-to-end
//! through the facade on a tiny TPC-C log and predicts finite, positive
//! memory for a small workload. This guards the crate graph itself — facade
//! re-exports, core → mlkit/plan/workloads dependencies, and the five
//! `ModelKind` code paths — rather than model quality.

use learnedwmp::core::{LearnedWmp, ModelKind, TemplateSpec};
use learnedwmp::workloads::QueryRecord;

#[test]
fn every_model_kind_trains_and_predicts_positive_memory() {
    let log = learnedwmp::workloads::tpcc::generate(240, 11).expect("tpcc log");
    let train: Vec<&QueryRecord> = log.records.iter().collect();
    for kind in ModelKind::ALL {
        let model = LearnedWmp::builder()
            .model(kind)
            .templates(TemplateSpec::PlanKMeans { k: 6, seed: 42 })
            .fit(&log)
            .unwrap_or_else(|e| panic!("{kind:?} failed to train: {e}"));
        for workload in train.chunks(8).take(4) {
            let mb = model
                .predict_workload(workload)
                .unwrap_or_else(|e| panic!("{kind:?} failed to predict: {e}"));
            assert!(mb.is_finite() && mb > 0.0, "{kind:?} predicted {mb} for a nonempty workload");
        }
    }
}
