//! Substrate invariants across all three benchmark generators: every
//! generated query's plan, features, simulated memory, and heuristic estimate
//! obey the structural contracts the pipelines rely on.

use learnedwmp::plan::features::N_PLAN_FEATURES;
use learnedwmp::plan::{OpKind, Planner};
use learnedwmp::sim;
use learnedwmp::workloads::QueryLog;

fn logs() -> Vec<QueryLog> {
    vec![
        learnedwmp::workloads::tpcds::generate(400, 5).expect("tpcds"),
        learnedwmp::workloads::job::generate(400, 5).expect("job"),
        learnedwmp::workloads::tpcc::generate(400, 5).expect("tpcc"),
    ]
}

#[test]
fn every_generated_query_obeys_structural_contracts() {
    for log in logs() {
        let planner = Planner::new(&log.catalog);
        for r in &log.records {
            // Feature layout.
            assert_eq!(r.features.len(), N_PLAN_FEATURES, "{}", log.benchmark);
            // Labels and estimates are positive and finite.
            assert!(r.true_memory_mb().is_finite() && r.true_memory_mb() > 0.0);
            assert!(r.dbms_estimate_mb().is_finite() && r.dbms_estimate_mb() > 0.0);
            // Re-planning the stored spec reproduces the stored features.
            let plan = planner.plan(&r.spec).expect("replans");
            let features = learnedwmp::plan::features::featurize_plan(&plan);
            assert_eq!(features, r.features, "{} q{}", log.benchmark, r.id);
            // Scan count equals table count; join count equals tables - 1.
            let scans = plan.count_kind(OpKind::TableScan) + plan.count_kind(OpKind::IndexScan);
            assert_eq!(scans, r.spec.tables.len());
            let joins = plan.count_kind(OpKind::HashJoin)
                + plan.count_kind(OpKind::NestedLoopJoin)
                + plan.count_kind(OpKind::MergeJoin);
            assert_eq!(joins, r.spec.tables.len() - 1);
            // SQL renders and mentions every referenced table.
            let sql = r.sql();
            for t in &r.spec.tables {
                assert!(sql.contains(&t.table), "{sql}");
            }
        }
    }
}

#[test]
fn simulator_and_heuristic_agree_on_plan_reexecution() {
    // Determinism across separate simulator instances (same constants).
    for log in logs() {
        let planner = Planner::new(&log.catalog);
        let sim_a = sim::ExecutorSimulator::new();
        let sim_b = sim::ExecutorSimulator::new();
        let heur = sim::DbmsHeuristicEstimator::new();
        for r in log.records.iter().take(50) {
            let plan = planner.plan(&r.spec).expect("plan");
            assert_eq!(sim_a.peak_memory_mb(&plan, r.id), sim_b.peak_memory_mb(&plan, r.id));
            assert_eq!(sim_a.peak_memory_mb(&plan, r.id), r.true_memory_mb());
            assert_eq!(heur.estimate_mb(&plan), r.dbms_estimate_mb());
        }
    }
}

#[test]
fn benchmarks_occupy_distinct_memory_regimes() {
    let [tpcds, job, tpcc]: [QueryLog; 3] =
        logs().try_into().unwrap_or_else(|_| panic!("three logs"));
    let mean = |l: &QueryLog| l.mean_true_memory_mb();
    // Analytic benchmarks are orders of magnitude heavier than OLTP.
    assert!(mean(&tpcds) > 20.0 * mean(&tpcc), "tpcds {} vs tpcc {}", mean(&tpcds), mean(&tpcc));
    assert!(mean(&job) > 20.0 * mean(&tpcc), "job {} vs tpcc {}", mean(&job), mean(&tpcc));
}

#[test]
fn template_hints_are_within_declared_ranges() {
    let [tpcds, job, tpcc]: [QueryLog; 3] =
        logs().try_into().unwrap_or_else(|_| panic!("three logs"));
    assert!(tpcds
        .records
        .iter()
        .all(|r| r.template_hint < learnedwmp::workloads::tpcds::N_TEMPLATES));
    assert!(job.records.iter().all(|r| r.template_hint < learnedwmp::workloads::job::N_VARIANTS));
    assert!(tpcc
        .records
        .iter()
        .all(|r| r.template_hint < learnedwmp::workloads::tpcc::N_TEMPLATES));
}
