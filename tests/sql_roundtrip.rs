//! Property-based round-trip tests for the SQL front-end: an arbitrary
//! supported [`QuerySpec`] rendered to SQL, parsed back, and lowered against
//! the catalog must reproduce the original spec — structure, literal
//! spellings, and clause order — under every dialect. Selectivity estimates
//! are the one lossy channel (SQL text carries no statistics; lowering
//! re-derives them from the catalog), so specs are compared with the `sel_*`
//! fields and the id normalized out.

use proptest::prelude::*;

use learnedwmp::plan::query::{
    AggFunc, Aggregate, CmpOp, JoinEdge, Predicate, QuerySpec, TableRef,
};
use learnedwmp::sql::{all_dialects, lower, parse, render_sql_dialect};

/// Per-table alias pools. Disjoint (so joins never alias-collide) and
/// deliberately spiky: reserved words, upper-case spellings, and the table's
/// own name (which exercises `AS` elision) all appear.
const LINEITEM_ALIASES: [&str; 4] = ["l", "Line", "from", "lineitem"];
const ORDERS_ALIASES: [&str; 3] = ["o", "order", "Orders2"];
const PART_ALIASES: [&str; 3] = ["p", "select", "Part"];

/// Numeric-friendly predicate columns per table index (0 = lineitem,
/// 1 = orders, 2 = part) — all exist in `wmp_workloads::tpch::catalog()`.
const PRED_COLS: [[&str; 4]; 3] = [
    ["l_quantity", "l_discount", "l_suppkey", "l_shipmode"],
    ["o_totalprice", "o_custkey", "o_orderdate", "o_orderpriority"],
    ["p_size", "p_retailprice", "p_partkey", "p_brand"],
];

#[derive(Debug, Clone)]
struct PredPick {
    table: usize,
    col: usize,
    op: usize,
    a: u32,
    b: u32,
}

fn arb_pred() -> impl Strategy<Value = PredPick> {
    (0usize..3, 0usize..4, 0usize..8, 1u32..50, 1u32..5)
        .prop_map(|(table, col, op, a, b)| PredPick { table, col, op, a, b })
}

fn build_predicate(pick: &PredPick, aliases: &[&str; 3], present: &[usize]) -> Predicate {
    // Map the pick onto a table that is actually in the FROM list.
    let table = present[pick.table % present.len()];
    let column = PRED_COLS[table][pick.col].to_string();
    let (op, literal) = match pick.op {
        0 => (CmpOp::Eq, format!("{}", pick.a)),
        1 => (CmpOp::Lt, format!("{}", pick.a)),
        2 => (CmpOp::Le, format!("{}", pick.a)),
        3 => (CmpOp::Gt, format!("{}", pick.a)),
        4 => (CmpOp::Ge, format!("'v{}'", pick.a)),
        5 => (CmpOp::Between, format!("{} AND {}", pick.a, pick.a + pick.b)),
        6 => {
            let items: Vec<String> = (0..pick.b).map(|i| format!("{}", pick.a + i)).collect();
            (CmpOp::InList(pick.b as u8), items.join(", "))
        }
        _ => (CmpOp::Like, format!("'%v{}%'", pick.a)),
    };
    Predicate {
        table_alias: aliases[table].to_string(),
        column,
        op,
        literal,
        sel_est: 0.1,
        sel_true: 0.2,
    }
}

/// Strategy: a supported SELECT over the TPC-H catalog — lineitem, optionally
/// joined to orders and/or part, with arbitrary predicates, aggregation,
/// grouping, ordering, DISTINCT, and LIMIT.
fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    (
        (any::<bool>(), any::<bool>(), 0usize..4, 0usize..3, 0usize..3),
        prop::collection::vec(arb_pred(), 0..5),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        0usize..5,
        0u64..40,
        0u64..1000,
    )
        .prop_map(|(shape, preds, flags, agg_idx, limit_n, id)| {
            let (use_orders, use_part, l_alias, o_alias, p_alias) = shape;
            let (group, order, distinct) = flags;
            let aliases: [&str; 3] =
                [LINEITEM_ALIASES[l_alias], ORDERS_ALIASES[o_alias], PART_ALIASES[p_alias]];

            let mut tables = vec![TableRef::new("lineitem", aliases[0])];
            let mut joins = Vec::new();
            let mut present = vec![0usize];
            if use_orders {
                present.push(1);
                tables.push(TableRef::new("orders", aliases[1]));
                joins.push(JoinEdge {
                    left_alias: aliases[0].into(),
                    left_col: "l_orderkey".into(),
                    right_alias: aliases[1].into(),
                    right_col: "o_orderkey".into(),
                });
            }
            if use_part {
                present.push(2);
                tables.push(TableRef::new("part", aliases[2]));
                joins.push(JoinEdge {
                    left_alias: aliases[0].into(),
                    left_col: "l_partkey".into(),
                    right_alias: aliases[2].into(),
                    right_col: "p_partkey".into(),
                });
            }

            let predicates: Vec<Predicate> =
                preds.iter().map(|p| build_predicate(p, &aliases, &present)).collect();

            let group_by = if group {
                vec![(aliases[0].to_string(), "l_returnflag".to_string())]
            } else {
                vec![]
            };
            let aggregates = match agg_idx {
                0 => vec![],
                1 => vec![Aggregate {
                    func: AggFunc::Count,
                    table_alias: String::new(),
                    column: String::new(),
                }],
                2 => vec![Aggregate {
                    func: AggFunc::Sum,
                    table_alias: aliases[0].into(),
                    column: "l_quantity".into(),
                }],
                3 => vec![Aggregate {
                    func: AggFunc::Avg,
                    table_alias: aliases[0].into(),
                    column: "l_discount".into(),
                }],
                _ => vec![
                    Aggregate {
                        func: AggFunc::Min,
                        table_alias: aliases[0].into(),
                        column: "l_extendedprice".into(),
                    },
                    Aggregate {
                        func: AggFunc::Count,
                        table_alias: String::new(),
                        column: String::new(),
                    },
                ],
            };
            let order_by = if order && group { group_by.clone() } else { vec![] };
            let limit = if limit_n > 0 { Some(limit_n) } else { None };
            QuerySpec {
                id,
                tables,
                joins,
                predicates,
                group_by,
                aggregates,
                order_by,
                distinct,
                limit,
            }
        })
}

/// Zeroes the fields SQL text cannot carry, so round-tripped specs compare
/// structurally.
fn normalized(mut q: QuerySpec) -> QuerySpec {
    q.id = 0;
    for p in &mut q.predicates {
        p.sel_est = 0.0;
        p.sel_true = 0.0;
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_parse_lower_is_lossless_under_every_dialect(spec in arb_spec()) {
        let cat = learnedwmp::workloads::tpch::catalog();
        let expected = normalized(spec.clone());
        for dialect in all_dialects() {
            let sql = render_sql_dialect(&spec, dialect);
            let stmt = parse(&sql, dialect).unwrap_or_else(|e| {
                panic!("[{}] {sql:?} failed to parse: {e}", dialect.name())
            });
            let lowered = lower(&stmt, &cat).unwrap_or_else(|e| {
                panic!("[{}] {sql:?} failed to lower: {e}", dialect.name())
            });
            let got = normalized(lowered);
            prop_assert!(
                got == expected,
                "round trip diverged under {} for {sql:?}: got {got:?}, want {expected:?}",
                dialect.name()
            );
        }
    }

    #[test]
    fn round_tripped_specs_still_plan(spec in arb_spec()) {
        // The lowered spec is not just structurally faithful — it is a valid
        // input to the rest of the pipeline.
        let cat = learnedwmp::workloads::tpch::catalog();
        let dialect = all_dialects()[0];
        let sql = render_sql_dialect(&spec, dialect);
        let lowered = learnedwmp::sql::parse_to_spec(&sql, dialect, &cat).expect("round trip");
        let planner = learnedwmp::plan::Planner::new(&cat);
        let plan = planner.plan(&lowered).expect("lowered specs plan");
        let sim = learnedwmp::sim::ExecutorSimulator::new();
        prop_assert!(sim.peak_memory_mb(&plan, lowered.id) > 0.0);
    }
}
